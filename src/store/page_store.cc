#include "page_store.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "util/hash.hh"

namespace osp::store
{

namespace
{

/** Microseconds elapsed since @p t0 (self-profiling only; wall time
 *  never feeds any deterministic output). */
std::uint64_t
elapsedUs(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

// All on-disk integers are little-endian, independent of the host.

void
putU16(unsigned char *p, std::uint16_t v)
{
    p[0] = static_cast<unsigned char>(v);
    p[1] = static_cast<unsigned char>(v >> 8);
}

void
putU32(unsigned char *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void
putU64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint16_t
getU16(const unsigned char *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

[[noreturn]] void
corrupt(const std::string &what)
{
    throw std::runtime_error("store: corrupt file: " + what);
}

void
encodeHeader(unsigned char *p, const PageHeader &h)
{
    putU64(p, h.id);
    putU16(p + 8, h.flags);
    putU16(p + 10, h.count);
    putU32(p + 12, h.overflow);
}

PageHeader
decodeHeader(const unsigned char *p)
{
    PageHeader h;
    h.id = getU64(p);
    h.flags = getU16(p + 8);
    h.count = getU16(p + 10);
    h.overflow = getU32(p + 12);
    return h;
}

/** Serialized meta payload (the checksummed prefix + checksum). */
constexpr std::size_t metaBytes = 56;

void
encodeMeta(unsigned char *p, const Meta &m)
{
    putU32(p, m.magic);
    putU32(p + 4, m.version);
    putU32(p + 8, m.pageSize);
    putU32(p + 12, m.reserved);
    putU64(p + 16, m.root);
    putU64(p + 24, m.freelist);
    putU64(p + 32, m.numPages);
    putU64(p + 40, m.txid);
    putU64(p + 48, m.checksum);
}

Meta
decodeMeta(const unsigned char *p)
{
    Meta m;
    m.magic = getU32(p);
    m.version = getU32(p + 4);
    m.pageSize = getU32(p + 8);
    m.reserved = getU32(p + 12);
    m.root = getU64(p + 16);
    m.freelist = getU64(p + 24);
    m.numPages = getU64(p + 32);
    m.txid = getU64(p + 40);
    m.checksum = getU64(p + 48);
    return m;
}

/** Encoded size of one leaf record. */
std::size_t
recordSize(std::size_t ksize, std::size_t vsize, bool inline_value)
{
    return 4 + 4 + 1 + ksize + (inline_value ? vsize : 8);
}

/** Largest record kept inline: a quarter of a leaf's data area, so
 *  a leaf always packs several records. */
std::size_t
inlineLimit(std::uint32_t page_size)
{
    return (page_size - pageHeaderSize) / 4;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

} // namespace

std::uint64_t
metaChecksum(const Meta &meta)
{
    unsigned char buf[metaBytes];
    Meta m = meta;
    m.checksum = 0;
    encodeMeta(buf, m);
    return stableHash64(buf, 48);
}

// --- raw page access -------------------------------------------------

const unsigned char *
PageStore::pagePtr(const MappedView &view, std::uint64_t id) const
{
    std::uint64_t off = id * meta_.pageSize;
    if (off + meta_.pageSize > view.length())
        corrupt("page " + std::to_string(id) + " beyond mapping");
    return view.data() + off;
}

PageHeader
PageStore::readHeader(const MappedView &view, std::uint64_t id) const
{
    PageHeader h = decodeHeader(pagePtr(view, id));
    if (h.id != id)
        corrupt("page " + std::to_string(id) + " header id " +
                std::to_string(h.id));
    return h;
}

std::vector<std::pair<std::string, std::uint64_t>>
PageStore::decodeRoot(const MappedView &view, std::uint64_t root) const
{
    std::vector<std::pair<std::string, std::uint64_t>> index;
    if (root == 0)
        return index;
    PageHeader h = readHeader(view, root);
    if (!(h.flags & PageBranch))
        corrupt("root page " + std::to_string(root) +
                " is not a branch");
    std::uint64_t run_pages = 1 + h.overflow;
    if ((root + run_pages) * meta_.pageSize > view.length())
        corrupt("root run beyond mapping");
    const unsigned char *data =
        pagePtr(view, root) + pageHeaderSize;
    std::size_t avail =
        run_pages * meta_.pageSize - pageHeaderSize;
    if (avail < 8)
        corrupt("root run too small");
    std::uint64_t count = getU64(data);
    std::size_t pos = 8;
    index.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        if (pos + 12 > avail)
            corrupt("root entry overruns run");
        std::uint64_t leaf = getU64(data + pos);
        std::uint32_t ksize = getU32(data + pos + 8);
        pos += 12;
        if (ksize > maxKeySize || pos + ksize > avail)
            corrupt("root key overruns run");
        index.emplace_back(
            std::string(reinterpret_cast<const char *>(data + pos),
                        ksize),
            leaf);
        pos += ksize;
    }
    return index;
}

std::string
PageStore::readValue(const MappedView &view,
                     const unsigned char *rec,
                     std::size_t ksize) const
{
    std::uint32_t vsize = getU32(rec + 4);
    bool overflow = rec[8] != 0;
    const unsigned char *payload = rec + 9 + ksize;
    if (!overflow) {
        return std::string(
            reinterpret_cast<const char *>(payload), vsize);
    }
    std::uint64_t ov = getU64(payload);
    PageHeader h = readHeader(view, ov);
    if (!(h.flags & PageOverflow))
        corrupt("value run page " + std::to_string(ov) +
                " is not overflow");
    std::uint64_t run_pages = 1 + h.overflow;
    std::size_t capacity =
        run_pages * meta_.pageSize - pageHeaderSize;
    if (vsize > capacity ||
        (ov + run_pages) * meta_.pageSize > view.length())
        corrupt("value run overruns file");
    return std::string(reinterpret_cast<const char *>(
                           pagePtr(view, ov) + pageHeaderSize),
                       vsize);
}

std::vector<std::pair<std::string, std::string>>
PageStore::decodeLeaf(
    const MappedView &view, std::uint64_t id,
    std::vector<std::pair<std::uint64_t, std::uint64_t>> *owned)
    const
{
    PageHeader h = readHeader(view, id);
    if (!(h.flags & PageLeaf))
        corrupt("page " + std::to_string(id) + " is not a leaf");
    if (owned)
        owned->emplace_back(id, 1);
    const unsigned char *base = pagePtr(view, id);
    std::size_t avail = meta_.pageSize;
    std::size_t pos = pageHeaderSize;
    std::vector<std::pair<std::string, std::string>> records;
    records.reserve(h.count);
    for (std::uint16_t i = 0; i < h.count; ++i) {
        if (pos + 9 > avail)
            corrupt("leaf record overruns page");
        const unsigned char *rec = base + pos;
        std::uint32_t ksize = getU32(rec);
        std::uint32_t vsize = getU32(rec + 4);
        bool overflow = rec[8] != 0;
        std::size_t rec_size =
            recordSize(ksize, vsize, !overflow);
        if (ksize > maxKeySize || pos + rec_size > avail)
            corrupt("leaf record overruns page");
        std::string key(
            reinterpret_cast<const char *>(rec + 9), ksize);
        if (overflow && owned) {
            std::uint64_t ov = getU64(rec + 9 + ksize);
            PageHeader oh = readHeader(view, ov);
            owned->emplace_back(ov, 1 + oh.overflow);
        }
        records.emplace_back(std::move(key),
                             readValue(view, rec, ksize));
        pos += rec_size;
    }
    return records;
}

// --- open / create ---------------------------------------------------

namespace
{

/** Is this decoded meta internally consistent for a file of
 *  @p file_len bytes at candidate page size @p page_size? */
bool
metaValid(const Meta &m, std::uint32_t page_size,
          std::uint64_t file_len)
{
    if (m.magic != storeMagic || m.version != storeVersion)
        return false;
    if (m.pageSize != page_size || m.pageSize < 512)
        return false;
    if (m.checksum != metaChecksum(m))
        return false;
    if (m.numPages < 2 || m.numPages * m.pageSize > file_len)
        return false;
    if (m.root >= m.numPages || m.freelist >= m.numPages)
        return false;
    return true;
}

} // namespace

std::unique_ptr<PageStore>
PageStore::open(const std::string &path, const StoreOptions &options)
{
    auto store = std::unique_ptr<PageStore>(new PageStore());
    store->shared_ = options.shared;
    store->txLockWaitMs_ = options.txLockWaitMs;

    // The sidecar writer gate. Exclusive read-write opens keep it
    // for the store's lifetime (a second read-write open fails with
    // the holder diagnostic below); shared mode holds it only
    // across open/creation, then per transaction. Read-only
    // exclusive opens are lockless offline inspection.
    if (options.shared || !options.readOnly) {
        store->gate_ = std::make_unique<FileLock>(path + ".lock");
        long wait = options.shared ? options.txLockWaitMs
                                   : options.lockWaitMs;
        auto lock_t0 = std::chrono::steady_clock::now();
        if (!store->gate_->tryLock(
                options.shared ? "shared worker" : "exclusive",
                wait)) {
            std::string holder = store->gate_->holderHint();
            throw std::runtime_error(
                "store: '" + path +
                "' is locked by another read-write handle" +
                (holder.empty() ? std::string()
                                : " [" + holder + "]") +
                "; close it, or wait for it with --store-wait");
        }
        store->recordLockWait(elapsedUs(lock_t0));
    }

    bool exists = false;
    {
        // A zero-length or absent file is "new"; anything else must
        // carry a valid meta.
        FILE *f = std::fopen(path.c_str(), "rb");
        if (f) {
            std::fseek(f, 0, SEEK_END);
            exists = std::ftell(f) > 0;
            std::fclose(f);
        }
    }

    if (!exists) {
        if (options.readOnly)
            throw std::runtime_error(
                "store: no such store file '" + path + "'");
        std::uint32_t page_size = options.pageSize
                                      ? options.pageSize
                                      : osDefaultPageSize();
        if (page_size < 512 || (page_size & (page_size - 1)) != 0)
            throw std::runtime_error(
                "store: page size must be a power of two >= 512");
        store->file_ = std::make_unique<MmapFile>(
            path, false, std::size_t{4} * page_size);

        Meta m;
        m.pageSize = page_size;
        m.root = 0;
        m.freelist = 0;
        m.numPages = 2;
        auto view = store->file_->view();
        for (std::uint64_t slot = 0; slot < 2; ++slot) {
            m.txid = slot;
            m.checksum = metaChecksum(m);
            unsigned char *p = view->data() + slot * page_size;
            PageHeader h;
            h.id = slot;
            h.flags = PageMeta;
            encodeHeader(p, h);
            encodeMeta(p + pageHeaderSize, m);
        }
        store->file_->sync(0, 2 * page_size);
        store->meta_ = m;  // txid 1 (slot 1) is the newest
        store->allocHigh_ = 2;
        if (options.shared)
            store->gate_->unlock();
        return store;
    }

    store->file_ =
        std::make_unique<MmapFile>(path, options.readOnly, 0);
    auto view = store->file_->view();
    std::uint64_t file_len = view->length();

    // Meta 0 sits at offset 0; meta 1 at offset pageSize, which we
    // normally learn from meta 0. When meta 0 is torn, probe the
    // usual page sizes for a valid meta 1.
    std::vector<Meta> valid;
    if (file_len >= pageHeaderSize + metaBytes) {
        Meta m0 =
            decodeMeta(view->data() + pageHeaderSize);
        if (metaValid(m0, m0.pageSize, file_len))
            valid.push_back(m0);
    }
    std::vector<std::uint32_t> candidates;
    if (!valid.empty())
        candidates.push_back(valid[0].pageSize);
    else
        candidates = {4096, 8192, 16384, 32768, 65536,
                      options.pageSize};
    for (std::uint32_t ps : candidates) {
        if (ps == 0 ||
            file_len < std::uint64_t{ps} + pageHeaderSize +
                           metaBytes)
            continue;
        Meta m1 = decodeMeta(view->data() + ps + pageHeaderSize);
        if (metaValid(m1, ps, file_len)) {
            valid.push_back(m1);
            break;
        }
    }
    if (valid.empty())
        throw std::runtime_error(
            "store: no valid meta page in '" + path +
            "' (corrupt or truncated store)");
    store->meta_ = valid[0];
    for (const Meta &m : valid) {
        if (m.txid > store->meta_.txid)
            store->meta_ = m;
    }
    store->allocHigh_ = store->meta_.numPages;
    store->loadFreelist();
    if (options.shared)
        store->gate_->unlock();
    return store;
}

PageStore::~PageStore() = default;

void
PageStore::loadFreelist()
{
    free_.clear();
    if (meta_.freelist == 0)
        return;
    auto view = file_->view();
    PageHeader h = readHeader(*view, meta_.freelist);
    if (!(h.flags & PageFreelist))
        corrupt("freelist page " + std::to_string(meta_.freelist) +
                " has wrong type");
    std::uint64_t run_pages = 1 + h.overflow;
    const unsigned char *data =
        pagePtr(*view, meta_.freelist) + pageHeaderSize;
    std::size_t avail =
        run_pages * meta_.pageSize - pageHeaderSize;
    if (avail < 8)
        corrupt("freelist run too small");
    std::uint64_t count = getU64(data);
    if (8 + count * 8 > avail)
        corrupt("freelist overruns run");
    free_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t id = getU64(data + 8 + i * 8);
        if (id < 2 || id >= meta_.numPages)
            corrupt("freelist lists page " + std::to_string(id));
        free_.push_back(id);
    }
    std::sort(free_.begin(), free_.end());
}

// --- shared-mode gate ------------------------------------------------

void
PageStore::acquireTxGate()
{
    auto lock_t0 = std::chrono::steady_clock::now();
    {
        std::unique_lock<std::mutex> lock(gateMu_);
        if (gateHeld_ &&
            gateOwner_ == std::this_thread::get_id())
            throw std::runtime_error(
                "store: nested transaction on shared-mode store "
                "'" +
                file_->path() + "'");
        gateCv_.wait(lock, [this] { return !gateHeld_; });
        gateHeld_ = true;
        gateOwner_ = std::this_thread::get_id();
    }
    if (!gate_->tryLock("shared worker", txLockWaitMs_)) {
        std::string holder = gate_->holderHint();
        {
            std::lock_guard<std::mutex> lock(gateMu_);
            gateHeld_ = false;
            gateOwner_ = std::thread::id();
        }
        gateCv_.notify_one();
        throw std::runtime_error(
            "store: timed out waiting for the writer gate of '" +
            file_->path() + "'" +
            (holder.empty() ? std::string()
                            : " [held by " + holder + "]"));
    }
    recordLockWait(elapsedUs(lock_t0));
}

void
PageStore::releaseTxGate()
{
    gate_->unlock();
    {
        std::lock_guard<std::mutex> lock(gateMu_);
        gateHeld_ = false;
        gateOwner_ = std::thread::id();
    }
    gateCv_.notify_one();
}

void
PageStore::refreshFromDisk()
{
    file_->refresh();
    auto view = file_->view();
    std::uint64_t file_len = view->length();
    // Both meta slots at the page size recorded at open (another
    // process cannot change it); adopt the newest valid commit.
    Meta newest = meta_;
    for (std::uint64_t slot = 0; slot < 2; ++slot) {
        std::uint64_t off =
            slot * meta_.pageSize + pageHeaderSize;
        if (off + metaBytes > file_len)
            continue;
        Meta m = decodeMeta(view->data() + off);
        if (metaValid(m, meta_.pageSize, file_len) &&
            m.txid > newest.txid)
            newest = m;
    }
    if (newest.txid == meta_.txid)
        return;
    meta_ = newest;
    allocHigh_ = meta_.numPages;
    // The gate globally serializes transactions, so no reader —
    // here or in any other process — can still reference pages the
    // adopted freelist hands out.
    pending_.clear();
    loadFreelist();
}

// --- transactions ----------------------------------------------------

ReadTx
PageStore::beginRead()
{
    if (shared_) {
        acquireTxGate();
        try {
            std::lock_guard<std::mutex> lock(stateMu_);
            refreshFromDisk();
            readers_.insert(meta_.txid);
            ReadTx tx(this, file_->view(), meta_.root,
                      meta_.txid);
            tx.gated_ = true;
            return tx;
        } catch (...) {
            releaseTxGate();
            throw;
        }
    }
    std::lock_guard<std::mutex> lock(stateMu_);
    readers_.insert(meta_.txid);
    return ReadTx(this, file_->view(), meta_.root, meta_.txid);
}

void
PageStore::unregisterReader(std::uint64_t txid)
{
    std::lock_guard<std::mutex> lock(stateMu_);
    auto it = readers_.find(txid);
    if (it != readers_.end())
        readers_.erase(it);
}

ReadTx::ReadTx(PageStore *store, std::shared_ptr<MappedView> view,
               std::uint64_t root, std::uint64_t txid)
    : store_(store), view_(std::move(view)), root_(root),
      txid_(txid)
{
}

ReadTx::~ReadTx()
{
    if (!store_)
        return;
    store_->unregisterReader(txid_);
    if (gated_)
        store_->releaseTxGate();
}

ReadTx::ReadTx(ReadTx &&other) noexcept
    : store_(other.store_), view_(std::move(other.view_)),
      root_(other.root_), txid_(other.txid_), gated_(other.gated_)
{
    other.store_ = nullptr;
    other.gated_ = false;
}

std::optional<std::string>
ReadTx::get(std::string_view key) const
{
    auto index = store_->decodeRoot(*view_, root_);
    // Last leaf whose first key <= key.
    std::size_t lo = index.size();
    for (std::size_t i = 0; i < index.size(); ++i) {
        if (index[i].first <= key)
            lo = i;
        else
            break;
    }
    if (lo == index.size())
        return std::nullopt;
    auto records =
        store_->decodeLeaf(*view_, index[lo].second, nullptr);
    for (const auto &[k, v] : records) {
        if (k == key)
            return v;
        if (k > key)
            break;
    }
    return std::nullopt;
}

void
ReadTx::scan(std::string_view prefix,
             const std::function<bool(std::string_view,
                                      std::string_view)> &fn) const
{
    auto index = store_->decodeRoot(*view_, root_);
    // First leaf that could contain the prefix: the one before the
    // first leaf whose first key exceeds it.
    std::size_t start = 0;
    for (std::size_t i = 0; i < index.size(); ++i) {
        if (index[i].first <= prefix)
            start = i;
        else
            break;
    }
    for (std::size_t i = start; i < index.size(); ++i) {
        auto records =
            store_->decodeLeaf(*view_, index[i].second, nullptr);
        for (const auto &[k, v] : records) {
            if (startsWith(k, prefix)) {
                if (!fn(k, v))
                    return;
            } else if (k > prefix) {
                return;  // sorted: nothing later can match
            }
        }
    }
}

std::uint64_t
ReadTx::size() const
{
    auto index = store_->decodeRoot(*view_, root_);
    std::uint64_t keys = 0;
    for (const auto &[first, leaf] : index)
        keys += store_->readHeader(*view_, leaf).count;
    return keys;
}

WriteTx
PageStore::beginWrite()
{
    if (file_->readOnly())
        throw std::runtime_error(
            "store: write transaction on read-only store");
    if (!shared_)
        return WriteTx(this);
    acquireTxGate();
    try {
        {
            std::lock_guard<std::mutex> lock(stateMu_);
            refreshFromDisk();
        }
        WriteTx tx(this);
        tx.gated_ = true;
        return tx;
    } catch (...) {
        releaseTxGate();
        throw;
    }
}

WriteTx::WriteTx(PageStore *store)
    : store_(store), writerLock_(store->writerMu_)
{
    std::lock_guard<std::mutex> lock(store_->stateMu_);
    view_ = store_->file_->view();
    baseTxid_ = store_->meta_.txid;
    rootIndex_ = store_->decodeRoot(*view_, store_->meta_.root);
}

WriteTx::~WriteTx()
{
    if (store_ && gated_)
        store_->releaseTxGate();
}

WriteTx::WriteTx(WriteTx &&other) noexcept
    : store_(other.store_),
      writerLock_(std::move(other.writerLock_)),
      view_(std::move(other.view_)), baseTxid_(other.baseTxid_),
      done_(other.done_), gated_(other.gated_),
      rootIndex_(std::move(other.rootIndex_)),
      leaves_(std::move(other.leaves_))
{
    other.store_ = nullptr;
    other.done_ = true;
    other.gated_ = false;
}

std::size_t
WriteTx::leafIndexFor(std::string_view key) const
{
    std::size_t lo = 0;
    for (std::size_t i = 0; i < rootIndex_.size(); ++i) {
        if (rootIndex_[i].first <= key)
            lo = i;
        else
            break;
    }
    return lo;
}

WriteTx::Leaf &
WriteTx::loadLeaf(std::size_t index)
{
    auto it = leaves_.find(index);
    if (it != leaves_.end())
        return it->second;
    Leaf leaf;
    if (index < rootIndex_.size()) {
        leaf.records = store_->decodeLeaf(
            *view_, rootIndex_[index].second, &leaf.owned);
    }
    return leaves_.emplace(index, std::move(leaf)).first->second;
}

const WriteTx::Leaf &
WriteTx::loadLeaf(std::size_t index) const
{
    return const_cast<WriteTx *>(this)->loadLeaf(index);
}

void
WriteTx::put(std::string_view key, std::string_view value)
{
    if (done_)
        throw std::runtime_error("store: put on spent WriteTx");
    if (key.empty() || key.size() > maxKeySize)
        throw std::runtime_error("store: bad key size " +
                                 std::to_string(key.size()));
    Leaf &leaf = loadLeaf(leafIndexFor(key));
    auto pos = std::lower_bound(
        leaf.records.begin(), leaf.records.end(), key,
        [](const auto &rec, std::string_view k) {
            return rec.first < k;
        });
    if (pos != leaf.records.end() && pos->first == key)
        pos->second = std::string(value);
    else
        leaf.records.emplace(pos, std::string(key),
                             std::string(value));
    leaf.dirty = true;
}

bool
WriteTx::erase(std::string_view key)
{
    if (done_)
        throw std::runtime_error("store: erase on spent WriteTx");
    if (rootIndex_.empty() && leaves_.empty())
        return false;
    Leaf &leaf = loadLeaf(leafIndexFor(key));
    auto pos = std::lower_bound(
        leaf.records.begin(), leaf.records.end(), key,
        [](const auto &rec, std::string_view k) {
            return rec.first < k;
        });
    if (pos == leaf.records.end() || pos->first != key)
        return false;
    leaf.records.erase(pos);
    leaf.dirty = true;
    return true;
}

std::optional<std::string>
WriteTx::get(std::string_view key) const
{
    if (rootIndex_.empty() && leaves_.empty())
        return std::nullopt;
    const Leaf &leaf = loadLeaf(leafIndexFor(key));
    for (const auto &[k, v] : leaf.records) {
        if (k == key)
            return v;
        if (k > key)
            break;
    }
    return std::nullopt;
}

void
WriteTx::scan(std::string_view prefix,
              const std::function<bool(std::string_view,
                                       std::string_view)> &fn) const
{
    std::size_t num_leaves = rootIndex_.size();
    if (num_leaves == 0 && !leaves_.empty())
        num_leaves = 1;
    for (std::size_t i = 0; i < num_leaves; ++i) {
        const Leaf &leaf = loadLeaf(i);
        for (const auto &[k, v] : leaf.records) {
            if (startsWith(k, prefix)) {
                if (!fn(k, v))
                    return;
            } else if (k > prefix) {
                return;
            }
        }
    }
}

void
WriteTx::commit()
{
    if (done_)
        throw std::runtime_error("store: commit on spent WriteTx");
    store_->commitTx(*this);
    done_ = true;
}

// --- the committing machinery ---------------------------------------

std::uint64_t
PageStore::allocRun(std::uint64_t n)
{
    // free_ is kept sorted; find n consecutive ids.
    if (n <= free_.size()) {
        for (std::size_t i = 0; i + n <= free_.size(); ++i) {
            bool ok = true;
            for (std::uint64_t j = 1; j < n; ++j) {
                if (free_[i + j] != free_[i] + j) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                std::uint64_t id = free_[i];
                free_.erase(free_.begin() +
                                static_cast<std::ptrdiff_t>(i),
                            free_.begin() +
                                static_cast<std::ptrdiff_t>(i + n));
                return id;
            }
        }
    }
    std::uint64_t id = allocHigh_;
    allocHigh_ += n;
    return id;
}

void
PageStore::promotePending()
{
    std::uint64_t min_reader =
        readers_.empty() ? UINT64_MAX : *readers_.begin();
    while (!pending_.empty() &&
           pending_.begin()->first <= min_reader) {
        auto &pages = pending_.begin()->second;
        free_.insert(free_.end(), pages.begin(), pages.end());
        pending_.erase(pending_.begin());
    }
    std::sort(free_.begin(), free_.end());
}

void
PageStore::commitTx(WriteTx &tx)
{
    auto commit_t0 = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(stateMu_);
    const std::uint32_t P = meta_.pageSize;

    // Roll the allocator back if anything throws before the meta is
    // published: nothing durable has changed, so the in-memory
    // state must keep describing the old commit.
    std::vector<std::uint64_t> free_backup = free_;
    std::uint64_t alloc_backup = allocHigh_;

    try {
        promotePending();

        // Pages this commit frees (reusable two commits from now).
        std::vector<std::uint64_t> freed;
        auto free_run = [&](std::uint64_t first, std::uint64_t n) {
            for (std::uint64_t i = 0; i < n; ++i)
                freed.push_back(first + i);
        };

        struct Planned
        {
            std::uint64_t page;
            std::vector<unsigned char> bytes;
        };
        std::vector<Planned> writes;

        auto plan_overflow = [&](std::string_view value)
            -> std::uint64_t {
            std::uint64_t n =
                (value.size() + pageHeaderSize + P - 1) / P;
            std::uint64_t id = allocRun(n);
            Planned w;
            w.page = id;
            w.bytes.assign(n * P, 0);
            PageHeader h;
            h.id = id;
            h.flags = PageOverflow;
            h.overflow = static_cast<std::uint32_t>(n - 1);
            encodeHeader(w.bytes.data(), h);
            std::memcpy(w.bytes.data() + pageHeaderSize,
                        value.data(), value.size());
            writes.push_back(std::move(w));
            return id;
        };

        // Encode one dirty leaf's records into as many leaf pages
        // as they need, appending (first key, page) entries.
        std::vector<std::pair<std::string, std::uint64_t>> new_seq;
        auto emit_records =
            [&](const std::vector<
                std::pair<std::string, std::string>> &records) {
                std::size_t i = 0;
                while (i < records.size()) {
                    std::uint64_t id = allocRun(1);
                    Planned w;
                    w.page = id;
                    w.bytes.assign(P, 0);
                    std::size_t pos = pageHeaderSize;
                    std::uint16_t count = 0;
                    std::string first = records[i].first;
                    while (i < records.size()) {
                        const auto &[k, v] = records[i];
                        bool inl =
                            recordSize(k.size(), v.size(), true) <=
                            inlineLimit(P);
                        std::size_t rec_size = recordSize(
                            k.size(), v.size(), inl);
                        if (pos + rec_size > P)
                            break;
                        unsigned char *rec =
                            w.bytes.data() + pos;
                        putU32(rec, static_cast<std::uint32_t>(
                                        k.size()));
                        putU32(rec + 4,
                               static_cast<std::uint32_t>(
                                   v.size()));
                        rec[8] = inl ? 0 : 1;
                        std::memcpy(rec + 9, k.data(), k.size());
                        if (inl) {
                            std::memcpy(rec + 9 + k.size(),
                                        v.data(), v.size());
                        } else {
                            putU64(rec + 9 + k.size(),
                                   plan_overflow(v));
                        }
                        pos += rec_size;
                        ++count;
                        ++i;
                    }
                    PageHeader h;
                    h.id = id;
                    h.flags = PageLeaf;
                    h.count = count;
                    encodeHeader(w.bytes.data(), h);
                    writes.push_back(std::move(w));
                    new_seq.emplace_back(std::move(first), id);
                }
            };

        std::size_t num_leaves = tx.rootIndex_.size();
        if (num_leaves == 0 && !tx.leaves_.empty())
            num_leaves = 1;
        for (std::size_t i = 0; i < num_leaves; ++i) {
            auto it = tx.leaves_.find(i);
            if (it == tx.leaves_.end() || !it->second.dirty) {
                if (i < tx.rootIndex_.size())
                    new_seq.push_back(tx.rootIndex_[i]);
                continue;
            }
            for (const auto &[first, n] : it->second.owned)
                free_run(first, n);
            emit_records(it->second.records);
        }

        // New root directory run.
        std::uint64_t new_root = 0;
        if (!new_seq.empty()) {
            std::size_t size = 8;
            for (const auto &[key, page] : new_seq)
                size += 12 + key.size();
            std::uint64_t n =
                (size + pageHeaderSize + P - 1) / P;
            new_root = allocRun(n);
            Planned w;
            w.page = new_root;
            w.bytes.assign(n * P, 0);
            PageHeader h;
            h.id = new_root;
            h.flags = PageBranch;
            h.overflow = static_cast<std::uint32_t>(n - 1);
            encodeHeader(w.bytes.data(), h);
            unsigned char *data = w.bytes.data() + pageHeaderSize;
            putU64(data, new_seq.size());
            std::size_t pos = 8;
            for (const auto &[key, page] : new_seq) {
                putU64(data + pos, page);
                putU32(data + pos + 8,
                       static_cast<std::uint32_t>(key.size()));
                std::memcpy(data + pos + 12, key.data(),
                            key.size());
                pos += 12 + key.size();
            }
            writes.push_back(std::move(w));
        }
        if (meta_.root != 0) {
            PageHeader h = readHeader(*tx.view_, meta_.root);
            free_run(meta_.root, 1 + h.overflow);
        }
        if (meta_.freelist != 0) {
            PageHeader h = readHeader(*tx.view_, meta_.freelist);
            free_run(meta_.freelist, 1 + h.overflow);
        }

        // Freelist: everything reusable after this commit — the
        // current free set, every pending page, and what this
        // commit just freed. The run is sized before encoding (its
        // own allocation shrinks free_).
        std::uint64_t new_freelist = 0;
        {
            std::size_t pending_total = 0;
            for (const auto &[txid, pages] : pending_)
                pending_total += pages.size();
            std::size_t bound = free_.size() + pending_total +
                                freed.size() + 8;
            std::uint64_t n =
                (8 + bound * 8 + pageHeaderSize + P - 1) / P;
            std::uint64_t id = allocRun(n);
            std::vector<std::uint64_t> content = free_;
            for (const auto &[txid, pages] : pending_)
                content.insert(content.end(), pages.begin(),
                               pages.end());
            content.insert(content.end(), freed.begin(),
                           freed.end());
            std::sort(content.begin(), content.end());
            if (content.empty()) {
                // Nothing to record: release the run again rather
                // than writing an empty freelist.
                free_.push_back(id);
                std::sort(free_.begin(), free_.end());
                if (id + n == allocHigh_) {
                    // (only shrink when it was fresh growth)
                    for (std::uint64_t j = 0; j < n; ++j)
                        free_.pop_back();
                    allocHigh_ = id;
                }
            } else {
                new_freelist = id;
                Planned w;
                w.page = id;
                w.bytes.assign(n * P, 0);
                PageHeader h;
                h.id = id;
                h.flags = PageFreelist;
                h.overflow = static_cast<std::uint32_t>(n - 1);
                encodeHeader(w.bytes.data(), h);
                unsigned char *data =
                    w.bytes.data() + pageHeaderSize;
                putU64(data, content.size());
                for (std::size_t i = 0; i < content.size(); ++i)
                    putU64(data + 8 + i * 8, content[i]);
                writes.push_back(std::move(w));
            }
        }

        std::uint64_t new_num_pages = allocHigh_;

        // Grow the file before touching any page, then write and
        // sync all data pages.
        std::uint64_t needed = new_num_pages * P;
        if (needed > file_->length())
            file_->grow(std::max<std::size_t>(
                needed, file_->length() * 2));
        auto view = file_->view();
        std::uint64_t lo = UINT64_MAX;
        std::uint64_t hi = 0;
        for (const Planned &w : writes) {
            std::memcpy(view->data() + w.page * P,
                        w.bytes.data(), w.bytes.size());
            lo = std::min(lo, w.page * P);
            hi = std::max(hi, w.page * P + w.bytes.size());
        }
        if (hi > lo)
            file_->sync(lo, hi - lo);

        if (failPoint_ == FailPoint::BeforeMetaWrite) {
            failPoint_ = FailPoint::None;
            throw std::runtime_error(
                "store: fail point BeforeMetaWrite");
        }

        // Publish: meta into the alternate slot, then sync it.
        Meta m = meta_;
        m.root = new_root;
        m.freelist = new_freelist;
        m.numPages = new_num_pages;
        m.txid = meta_.txid + 1;
        m.checksum = metaChecksum(m);
        std::uint64_t slot = m.txid % 2;
        unsigned char *p = view->data() + slot * P;
        PageHeader h;
        h.id = slot;
        h.flags = PageMeta;
        encodeHeader(p, h);
        encodeMeta(p + pageHeaderSize, m);

        if (failPoint_ == FailPoint::BeforeMetaSync) {
            failPoint_ = FailPoint::None;
            throw std::runtime_error(
                "store: fail point BeforeMetaSync");
        }
        file_->sync(slot * P, P);

        meta_ = m;
        if (!freed.empty())
            pending_.emplace(m.txid, std::move(freed));
        recordCommit(elapsedUs(commit_t0), writes.size(),
                     tx.leaves_.size());
    } catch (...) {
        free_ = std::move(free_backup);
        allocHigh_ = alloc_backup;
        throw;
    }
}

void
PageStore::recordLockWait(std::uint64_t us)
{
    std::lock_guard<std::mutex> lock(profileMu_);
    ++profile_.lockAcquisitions;
    profile_.lockWaitUsTotal += us;
    profile_.lockWaitUs.observe(us);
}

void
PageStore::recordCommit(std::uint64_t us, std::uint64_t cow_pages,
                        std::uint64_t leaf_reads)
{
    std::lock_guard<std::mutex> lock(profileMu_);
    ++profile_.commitCount;
    profile_.commitUsTotal += us;
    profile_.pagesWrittenTotal += cow_pages;
    profile_.commitUs.observe(us);
    profile_.commitCowPages.observe(cow_pages);
    profile_.commitLeafReads.observe(leaf_reads);
}

StoreProfile
PageStore::profile() const
{
    std::lock_guard<std::mutex> lock(profileMu_);
    return profile_;
}

StoreInfo
PageStore::info()
{
    std::lock_guard<std::mutex> lock(stateMu_);
    StoreInfo s;
    s.pageSize = meta_.pageSize;
    s.txid = meta_.txid;
    s.numPages = meta_.numPages;
    s.freePages = free_.size();
    for (const auto &[txid, pages] : pending_)
        s.pendingPages += pages.size();
    s.fileBytes = file_->length();
    auto view = file_->view();
    auto index = decodeRoot(*view, meta_.root);
    s.leafPages = index.size();
    if (meta_.root != 0)
        s.rootRunPages =
            1 + readHeader(*view, meta_.root).overflow;
    for (const auto &[first, leaf] : index)
        s.keys += readHeader(*view, leaf).count;
    return s;
}

} // namespace osp::store
