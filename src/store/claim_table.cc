#include "claim_table.hh"

#include <cstdlib>

#include "util/json.hh"

namespace osp::store
{

std::string
claimStateName(ClaimState state)
{
    switch (state) {
    case ClaimState::Claimed:
        return "claimed";
    case ClaimState::Retry:
        return "retry";
    case ClaimState::Done:
        return "done";
    case ClaimState::Failed:
        return "failed";
    }
    return "claimed";
}

std::optional<ClaimState>
claimStateFromName(const std::string &name)
{
    if (name == "claimed")
        return ClaimState::Claimed;
    if (name == "retry")
        return ClaimState::Retry;
    if (name == "done")
        return ClaimState::Done;
    if (name == "failed")
        return ClaimState::Failed;
    return std::nullopt;
}

std::string
ClaimTable::claimKey(const std::string &fingerprint,
                     const std::string &cell_key)
{
    return "claim/" + fingerprint + "/" + cell_key;
}

std::string
ClaimTable::heartbeatKey(const std::string &fingerprint)
{
    return "claimhb/" + fingerprint;
}

std::string
ClaimTable::encode(const ClaimRecord &record)
{
    JsonValue doc = JsonValue::object();
    doc.add("owner", record.owner);
    doc.add("state", claimStateName(record.state));
    doc.add("epoch", record.epoch);
    doc.add("retries", record.retries);
    if (!record.error.empty())
        doc.add("error", record.error);
    return doc.dump(-1);
}

std::optional<ClaimRecord>
ClaimTable::decode(std::string_view text)
{
    bool ok = false;
    JsonValue doc = JsonValue::parse(text, &ok);
    if (!ok || !doc.isObject())
        return std::nullopt;

    const JsonValue *owner = doc.find("owner");
    const JsonValue *state = doc.find("state");
    const JsonValue *epoch = doc.find("epoch");
    const JsonValue *retries = doc.find("retries");
    if (!owner || !owner->isString() || !state ||
        !state->isString() || !epoch || !epoch->isNumber() ||
        !retries || !retries->isNumber())
        return std::nullopt;
    auto parsed_state = claimStateFromName(state->asString());
    if (!parsed_state)
        return std::nullopt;

    ClaimRecord record;
    record.owner = owner->asString();
    record.state = *parsed_state;
    record.epoch = epoch->asUint();
    record.retries = retries->asUint();
    if (const JsonValue *error = doc.find("error");
        error && error->isString())
        record.error = error->asString();
    return record;
}

std::uint64_t
ClaimTable::parseHeartbeat(const std::string &raw)
{
    // Decimal string written by bumpHeartbeat(); anything else is
    // treated as 0 so a corrupt counter fails toward "everything
    // expired" (reclaim + deterministic re-execution is benign).
    char *end = nullptr;
    unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
    if (end == raw.c_str() || *end != '\0')
        return 0;
    return static_cast<std::uint64_t>(v);
}

} // namespace osp::store
