/**
 * @file
 * The claim/lease keyspace that turns the page store into a
 * coordination substrate for multi-process sweeps.
 *
 * Workers cooperating on one sweep spec rendezvous on two key
 * families, both living next to the `cell/<fp>/...` result keys:
 *
 *  - `claim/<fingerprint>/<cellkey>` — one record per cell a worker
 *    has taken responsibility for, encoding the owner id, the claim
 *    state, the logical heartbeat epoch at which the current lease
 *    was taken, the retry count, and (for failed cells) the last
 *    error text.
 *  - `claimhb/<fingerprint>` — a monotonically increasing logical
 *    heartbeat counter. Every worker claim, commit, and idle-poll
 *    transaction bumps it, so it advances whenever any worker is
 *    making progress *or waiting on someone else's lease* (idle
 *    bumps are what let a crashed worker's last lease expire once
 *    everything else is done). Leases expire in heartbeat ticks,
 *    not wall time: a claim whose epoch lags the counter by more
 *    than the lease length belongs to a worker that has stopped
 *    participating and may be reclaimed. A live owner keeps its
 *    lease fresh however long a cell takes — a background
 *    refresher (driver/claim_executor) re-asserts the claim's
 *    epoch while it executes — and reclaiming never charges a
 *    retry, so even a spuriously expired lease (an owner alive but
 *    stalled past its refresh period) costs only benign duplicate
 *    execution, never a terminal failure.
 *
 * Records are canonical compact JSON so tools/check_store.py can
 * validate the keyspace without C++ help. Encoding is deterministic
 * (util/json insertion-ordered objects).
 *
 * The table is a pure codec plus transaction helpers; arbitration
 * (who may write when) is the page store's shared-mode gate, and
 * policy (when to reclaim, when to give up) is the claim executor's
 * (src/driver/claim_executor).
 */

#ifndef OSP_STORE_CLAIM_TABLE_HH
#define OSP_STORE_CLAIM_TABLE_HH

#include <cstdint>
#include <optional>
#include <string>

#include "page_store.hh"

namespace osp::store
{

/** Lifecycle of one cell's claim record. */
enum class ClaimState
{
    Claimed, //!< a worker holds a live lease and is executing
    Retry,   //!< last attempt threw; awaiting another claimant
    Done,    //!< result committed under the matching cell key
    Failed,  //!< retries exhausted; terminal
};

/** Round-trippable wire name ("claimed", "retry", ...). */
std::string claimStateName(ClaimState state);

/** Inverse of claimStateName(); nullopt for unknown names. */
std::optional<ClaimState> claimStateFromName(const std::string &name);

/** One `claim/<fp>/<cellkey>` record. */
struct ClaimRecord
{
    std::string owner;       //!< claiming worker's id
    ClaimState state = ClaimState::Claimed;
    std::uint64_t epoch = 0; //!< heartbeat value when claimed
    std::uint64_t retries = 0;
    std::string error;       //!< last failure text ("" when none)
};

/** See file comment. */
class ClaimTable
{
  public:
    /** `claim/<fingerprint>/<cellkey>`. @p cell_key is the cell
     *  cache's content hash, not the full store key. */
    static std::string claimKey(const std::string &fingerprint,
                                const std::string &cell_key);

    /** `claimhb/<fingerprint>`. */
    static std::string heartbeatKey(const std::string &fingerprint);

    /** Canonical compact-JSON encoding ("error" omitted when
     *  empty). */
    static std::string encode(const ClaimRecord &record);

    /** Strict decode; nullopt on malformed input (tools report
     *  those as corruption, workers treat them as absent). */
    static std::optional<ClaimRecord> decode(std::string_view text);

    explicit ClaimTable(std::string fingerprint)
        : fingerprint_(std::move(fingerprint))
    {
    }

    const std::string &fingerprint() const { return fingerprint_; }

    /** Record for @p cell_key in @p tx, nullopt when absent or
     *  malformed. */
    template <typename Tx>
    std::optional<ClaimRecord>
    get(const Tx &tx, const std::string &cell_key) const
    {
        auto raw = tx.get(claimKey(fingerprint_, cell_key));
        if (!raw)
            return std::nullopt;
        return decode(*raw);
    }

    /** Stage @p record for @p cell_key into @p tx. */
    void
    put(WriteTx &tx, const std::string &cell_key,
        const ClaimRecord &record) const
    {
        tx.put(claimKey(fingerprint_, cell_key), encode(record));
    }

    /** Current heartbeat in @p tx (0 when never bumped). */
    template <typename Tx>
    std::uint64_t
    heartbeat(const Tx &tx) const
    {
        auto raw = tx.get(heartbeatKey(fingerprint_));
        if (!raw)
            return 0;
        return parseHeartbeat(*raw);
    }

    /** Increment the heartbeat in @p tx; returns the new value. */
    std::uint64_t
    bumpHeartbeat(WriteTx &tx) const
    {
        std::uint64_t next = heartbeat(tx) + 1;
        tx.put(heartbeatKey(fingerprint_), std::to_string(next));
        return next;
    }

  private:
    static std::uint64_t parseHeartbeat(const std::string &raw);

    std::string fingerprint_;
};

} // namespace osp::store

#endif // OSP_STORE_CLAIM_TABLE_HH
