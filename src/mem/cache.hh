/**
 * @file
 * A set-associative cache model with owner-tagged lines.
 *
 * Matches the memory system of the paper's Sec. 5.1: write-back,
 * write-allocate, LRU replacement, 64-byte lines. Every resident line
 * carries the Owner (application or OS) that brought it in, which
 * provides (a) exact per-owner hit/miss statistics — the separation
 * of OS from application performance the technique requires — and
 * (b) the substrate for the cache-pollution model of Sec. 4.5, which
 * evicts application-owned victims from uniformly random sets when an
 * OS service is predicted instead of simulated.
 */

#ifndef OSP_MEM_CACHE_HH
#define OSP_MEM_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/random.hh"
#include "util/types.hh"

namespace osp
{

/** Replacement policy selector for Cache. */
enum class ReplPolicy
{
    Lru,     //!< least-recently-used (the paper's configuration)
    Random,  //!< uniform random victim (for ablation)
};

/** Static geometry and policy of one cache. */
struct CacheParams
{
    std::string name = "cache";     //!< for error messages / reports
    std::uint64_t sizeBytes = 0;    //!< total capacity
    std::uint32_t assoc = 1;        //!< ways per set
    std::uint32_t lineBytes = 64;   //!< line size (power of two)
    ReplPolicy repl = ReplPolicy::Lru;
};

/** Per-owner access/miss/eviction counters of one cache. */
struct CacheStats
{
    std::uint64_t accesses[numOwners] = {0, 0};
    std::uint64_t misses[numOwners] = {0, 0};
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    /** App-owned lines evicted by OS fills (natural pollution). */
    std::uint64_t crossEvictions = 0;
    /** Valid lines displaced or invalidated by the pollution
     *  injector (predicted OS pollution, Sec. 4.5). Fills into
     *  invalid slots are injectedFills, not evictions. */
    std::uint64_t injectedEvictions = 0;
    /** Lines made resident by the pollution injector (synthetic
     *  installs and footprint installs). */
    std::uint64_t injectedFills = 0;

    std::uint64_t
    totalAccesses() const
    {
        return accesses[0] + accesses[1];
    }

    std::uint64_t totalMisses() const { return misses[0] + misses[1]; }

    double
    missRate() const
    {
        std::uint64_t a = totalAccesses();
        return a ? static_cast<double>(totalMisses()) /
                       static_cast<double>(a)
                 : 0.0;
    }

    double
    missRateFor(Owner owner) const
    {
        auto i = static_cast<int>(owner);
        return accesses[i] ? static_cast<double>(misses[i]) /
                                 static_cast<double>(accesses[i])
                           : 0.0;
    }
};

/**
 * One level of cache. Latencies live in MemoryHierarchy; the Cache
 * itself only tracks residency, replacement and statistics.
 */
class Cache
{
  public:
    /** Outcome of one access. */
    struct AccessResult
    {
        bool hit = false;
        /** A dirty victim was evicted (writeback traffic). */
        bool writeback = false;
        /** An app-owned line was displaced by an OS fill. */
        bool crossEviction = false;
    };

    /** @param params geometry/policy
     *  @param seed   seed for random replacement and pollution */
    explicit Cache(const CacheParams &params,
                   std::uint64_t seed = 12345);

    /**
     * Access one address. On a miss the line is allocated
     * (write-allocate) and a victim evicted if the set is full.
     *
     * The MRU-way hit — by far the most common outcome on real
     * access streams — is resolved here in the header so callers
     * inline it down to a handful of instructions; everything else
     * (way scan, fill, eviction) goes through accessSlow().
     *
     * @param addr     byte address of the access
     * @param is_write true for stores (marks the line dirty)
     * @param owner    who performs the access
     */
    AccessResult
    access(Addr addr, bool is_write, Owner owner)
    {
        std::uint32_t set = setIndex(addr);
        Addr tag = tagOf(addr);
        std::size_t base =
            static_cast<std::size_t>(set) * params_.assoc;

        stats_.accesses[static_cast<int>(owner)] += 1;
        ++lruClock;

        // Fast path: the way that hit (or filled) last time in this
        // set. One compare against the compact tag array; invalid
        // ways hold a never-matching sentinel so no valid bit is
        // consulted.
        std::uint32_t mru = mruWay_[set];
        if (tags_[base + mru] == tag) {
            Line &line = lines[base + mru];
            line.lruStamp = lruClock;
            if (is_write)
                line.dirty = true;
            return AccessResult{true, false, false};
        }
        return accessSlow(set, tag, base, is_write, owner);
    }

    /** True if the address is currently resident (no state change,
     *  no statistics). */
    bool probe(Addr addr) const;

    /** How injected pollution treats the victim slot. */
    enum class PollutionMode
    {
        /** Invalidate an application-owned victim; a set with an
         *  invalid line yields no victim (the paper's Sec. 4.5
         *  formulation). */
        InvalidateApp,
        /** Invalidate the LRU victim regardless of owner. */
        InvalidateAny,
        /** Replace the victim (or an invalid slot) with a synthetic
         *  never-matching OS-owned line, modelling the skipped
         *  service actually fetching its footprint. Keeps sets full,
         *  so repeated pollution cannot saturate into a no-op — see
         *  DESIGN.md and the abl4 bench. */
        Install,
    };

    /**
     * Inject @p count predicted-miss displacements into uniformly
     * random sets (Sec. 4.5). For the invalidating modes the count
     * is clamped to the lines actually eligible (valid lines, or
     * valid application-owned lines for InvalidateApp): asking for
     * more evictions than the cache holds cannot evict more than it
     * holds, and the excess draws would only burn the RNG. Stats
     * record what really happened — evictions only when a valid
     * line was displaced, fills when a slot was populated.
     *
     * @return number of slots actually affected.
     */
    std::uint64_t pollute(std::uint64_t count, PollutionMode mode);

    /**
     * Silently make @p addr resident on behalf of a skipped OS
     * service (footprint-faithful pollution): a hit refreshes LRU, a
     * miss fills the victim slot. No access/miss statistics are
     * touched; evictions count as injected.
     *
     * @return true if the line was filled (was not resident).
     */
    bool install(Addr addr, Owner owner);

    /**
     * Invalidate everything (cold-start). Statistics survive. Also
     * rewinds the LRU clock, the synthetic-tag allocator and the
     * MRU-way memos: with no valid lines left, none of that state
     * is observable, and resetting it makes a flushed cache replay
     * exactly like a freshly constructed one (replacement RNG state
     * is the one deliberate exception — it has no reset point that
     * would not also rewind pollution draws).
     */
    void flush();

    /** Number of currently valid lines owned by @p owner (O(1):
     *  tracked incrementally). */
    std::uint64_t
    residentLines(Owner owner) const
    {
        return validLines_[static_cast<int>(owner)];
    }

    /** Number of currently valid lines (both owners). */
    std::uint64_t
    residentLines() const
    {
        return validLines_[0] + validLines_[1];
    }

    /** Accumulated statistics. */
    const CacheStats &stats() const { return stats_; }

    /** Reset statistics (contents survive). */
    void resetStats() { stats_ = CacheStats(); }

    /** Geometry accessors. */
    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return params_.assoc; }
    std::uint32_t lineBytes() const { return params_.lineBytes; }
    const CacheParams &params() const { return params_; }

  private:
    /**
     * Per-line metadata. The tag itself lives in the separate
     * compact tags_ array (8 bytes per way, sequential in memory),
     * so the hit path — by far the hottest loop in the simulator —
     * touches one dense cache line per set instead of striding
     * through this struct.
     */
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Owner owner = Owner::App;
        std::uint64_t lruStamp = 0;
    };

    /**
     * Sentinel stored in tags_ for invalid ways. Real tags are
     * addr >> lineShift with lineShift >= 1 (the constructor
     * requires lineBytes >= 2), and synthetic pollution tags start
     * at 1 << 52, so neither can ever equal ~0.
     */
    static constexpr Addr kInvalidTag = ~static_cast<Addr>(0);

    std::uint32_t
    setIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>((addr >> lineShift) &
                                          (numSets_ - 1));
    }

    Addr tagOf(Addr addr) const { return addr >> lineShift; }

    /** Pick the victim way in a (full) set per the policy. */
    std::uint32_t victimWay(std::uint32_t set);

    /** Way scan, fill and eviction for a non-MRU access; the stats
     *  and LRU-clock bumps already happened in access(). */
    AccessResult accessSlow(std::uint32_t set, Addr tag,
                            std::size_t base, bool is_write,
                            Owner owner);

    /**
     * Transition the residency of the line at flat index @p idx,
     * keeping validLines_ exact and the tag array in sync (an
     * invalidated way gets the never-matching sentinel; callers of
     * a fill store the real tag afterwards).
     */
    void
    retag(std::size_t idx, bool valid, Owner owner)
    {
        Line &line = lines[idx];
        if (line.valid)
            --validLines_[static_cast<int>(line.owner)];
        line.valid = valid;
        line.owner = owner;
        if (valid)
            ++validLines_[static_cast<int>(owner)];
        else
            tags_[idx] = kInvalidTag;
    }

    CacheParams params_;
    std::uint32_t numSets_ = 0;
    std::uint32_t lineShift = 0;
    std::uint64_t lruClock = 0;
    std::uint64_t syntheticTag = 0;
    std::uint64_t validLines_[numOwners] = {0, 0};
    std::vector<Line> lines;  //!< numSets * assoc, set-major
    /** Compact tag-or-sentinel per way, same indexing as lines. */
    std::vector<Addr> tags_;
    /**
     * Per-set memo of the most recently hitting/filled way: the
     * common "hit the same line again" case is a single compare
     * against tags_ with no scan. Purely an access-order hint —
     * never consulted for replacement, so victimWay semantics are
     * untouched.
     */
    std::vector<std::uint32_t> mruWay_;
    CacheStats stats_;
    Pcg32 rng;
};

} // namespace osp

#endif // OSP_MEM_CACHE_HH
