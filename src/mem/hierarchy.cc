#include "hierarchy.hh"

#include <algorithm>

namespace osp
{

MemoryHierarchy::MemoryHierarchy(const HierarchyParams &params)
    : params_(params),
      l1i_(params.l1i, params.seed * 3 + 1),
      l1d_(params.l1d, params.seed * 3 + 2),
      l2_(params.l2, params.seed * 3 + 3)
{
    if (params_.tlbEntries) {
        // A TLB is a set-associative cache of 4KB pages.
        CacheParams tlb;
        tlb.sizeBytes =
            static_cast<std::uint64_t>(params_.tlbEntries) * 4096;
        tlb.assoc = params_.tlbAssoc;
        tlb.lineBytes = 4096;
        tlb.name = "itlb";
        itlb_ = std::make_unique<Cache>(tlb, params.seed * 3 + 4);
        tlb.name = "dtlb";
        dtlb_ = std::make_unique<Cache>(tlb, params.seed * 3 + 5);
    }
}

AccessOutcome
MemoryHierarchy::accessBeyondL1(Addr addr, bool is_write,
                                Owner owner, Cycles now,
                                AccessOutcome out)
{
    // L1 dirty writeback occupies the bus toward L2 only in spirit;
    // the L1<->L2 link is not a modeled resource, so nothing to add.

    auto l2_res = l2_.access(addr, is_write, owner);
    out.latency += params_.l2HitLatency;
    if (l2_res.hit)
        return out;

    out.l2Miss = true;
    // Memory access: latency plus bus occupancy/queueing.
    Cycles request_at = now + out.latency;
    Cycles bus_start = std::max(request_at, busFreeAt);
    busFreeAt = bus_start + params_.busCyclesPerLine;
    Cycles queueing = bus_start - request_at;
    out.latency += queueing + params_.memLatency;
    if (l2_res.writeback) {
        // Posted writeback: occupies the bus, does not stall the load.
        busFreeAt += params_.busCyclesPerLine;
    }
    if (params_.l2NextLinePrefetch) {
        // Next-line prefetch: silently fill line+1 into the L2 and
        // account its bus occupancy (it never stalls the demand
        // load).
        if (l2_.install(addr + l2_.lineBytes(), owner))
            busFreeAt += params_.busCyclesPerLine;
    }
    return out;
}

bool
MemoryHierarchy::probeL1(Addr addr, AccessType type) const
{
    const Cache &l1 =
        type == AccessType::InstFetch ? l1i_ : l1d_;
    return l1.probe(addr);
}

std::uint64_t
MemoryHierarchy::pollute(std::uint64_t l1i_lines,
                         std::uint64_t l1d_lines,
                         std::uint64_t l2_lines,
                         Cache::PollutionMode mode)
{
    std::uint64_t affected = 0;
    affected += l1i_.pollute(l1i_lines, mode);
    affected += l1d_.pollute(l1d_lines, mode);
    affected += l2_.pollute(l2_lines, mode);
    return affected;
}

MemoryHierarchy::InstallOutcome
MemoryHierarchy::installLine(Addr addr, bool is_code, Owner owner)
{
    InstallOutcome out;
    out.l1Fill = (is_code ? l1i_ : l1d_).install(addr, owner);
    out.l2Fill = l2_.install(addr, owner);
    // Footprint pollution displaces TLB entries too.
    Cache *tlb = is_code ? itlb_.get() : dtlb_.get();
    if (tlb)
        tlb->install(addr, owner);
    return out;
}

HierarchyCounts
MemoryHierarchy::counts() const
{
    HierarchyCounts c;
    c.l1iAccesses = l1i_.stats().totalAccesses();
    c.l1iMisses = l1i_.stats().totalMisses();
    c.l1dAccesses = l1d_.stats().totalAccesses();
    c.l1dMisses = l1d_.stats().totalMisses();
    c.l2Accesses = l2_.stats().totalAccesses();
    c.l2Misses = l2_.stats().totalMisses();
    return c;
}

HierarchyCounts
MemoryHierarchy::countsFor(Owner owner) const
{
    auto i = static_cast<int>(owner);
    HierarchyCounts c;
    c.l1iAccesses = l1i_.stats().accesses[i];
    c.l1iMisses = l1i_.stats().misses[i];
    c.l1dAccesses = l1d_.stats().accesses[i];
    c.l1dMisses = l1d_.stats().misses[i];
    c.l2Accesses = l2_.stats().accesses[i];
    c.l2Misses = l2_.stats().misses[i];
    return c;
}

void
MemoryHierarchy::flushAll()
{
    l1i_.flush();
    l1d_.flush();
    l2_.flush();
    if (itlb_)
        itlb_->flush();
    if (dtlb_)
        dtlb_->flush();
    busFreeAt = 0;
}

void
MemoryHierarchy::resetStats()
{
    l1i_.resetStats();
    l1d_.resetStats();
    l2_.resetStats();
    if (itlb_)
        itlb_->resetStats();
    if (dtlb_)
        dtlb_->resetStats();
}

} // namespace osp
