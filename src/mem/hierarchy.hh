/**
 * @file
 * The three-level memory hierarchy of the paper's Sec. 5.1.
 *
 * L1I (16KB, 2-way), L1D (16KB, 4-way, 2-cycle hit), unified L2
 * (1MB, 8-way, 8-cycle hit), 300-cycle memory latency, and a
 * split-transaction 8-byte bus at 1/5 the core frequency (6.4 GB/s
 * at 4 GHz) whose occupancy adds queueing delay to overlapping
 * misses. All lines are 64 bytes, LRU, write-back/write-allocate.
 *
 * Demand accesses are tagged with their Owner so OS and application
 * statistics stay separable. Writeback traffic occupies the bus but
 * is not counted as demand L2 accesses (a deliberate simplification;
 * the technique only consumes demand-miss counts).
 */

#ifndef OSP_MEM_HIERARCHY_HH
#define OSP_MEM_HIERARCHY_HH

#include <cstdint>
#include <memory>

#include "cache.hh"
#include "util/types.hh"

namespace osp
{

/** What kind of memory reference is being made. */
enum class AccessType
{
    InstFetch,
    Load,
    Store,
};

/** Tunable parameters of the hierarchy; defaults match Sec. 5.1. */
struct HierarchyParams
{
    CacheParams l1i{"l1i", 16 * 1024, 2, 64, ReplPolicy::Lru};
    CacheParams l1d{"l1d", 16 * 1024, 4, 64, ReplPolicy::Lru};
    CacheParams l2{"l2", 1024 * 1024, 8, 64, ReplPolicy::Lru};
    Cycles l1iHitLatency = 1;
    Cycles l1dHitLatency = 2;
    Cycles l2HitLatency = 8;
    Cycles memLatency = 300;
    /** Bus occupancy per 64B line: 8 transfers of 8B at 800 MHz seen
     *  from a 4 GHz core = 40 core cycles. */
    Cycles busCyclesPerLine = 40;
    /**
     * TLB model: separate instruction/data TLBs, set-associative
     * over 4KB pages, with a fixed page-walk penalty on a miss.
     * The kernel's large footprints trash the TLBs just like the
     * caches, which is part of why OS-heavy execution is slow;
     * the footprint pollution policy replays this for predicted
     * intervals. Set tlbEntries to 0 to disable.
     */
    std::uint32_t tlbEntries = 64;
    std::uint32_t tlbAssoc = 4;
    Cycles tlbMissPenalty = 30;
    /**
     * Next-line prefetch into the L2 on every L2 demand miss
     * (ablation substrate; off by default to match the paper's
     * machine).
     */
    bool l2NextLinePrefetch = false;
    /** Seed for replacement/pollution randomness. */
    std::uint64_t seed = 1;
};

/** Timing and outcome of one demand access. */
struct AccessOutcome
{
    Cycles latency = 0;  //!< total load-to-use latency
    bool l1Miss = false;
    bool l2Miss = false;
    bool tlbMiss = false;
};

/** Plain counter snapshot used for interval deltas. */
struct HierarchyCounts
{
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;

    HierarchyCounts
    operator-(const HierarchyCounts &o) const
    {
        HierarchyCounts d;
        d.l1iAccesses = l1iAccesses - o.l1iAccesses;
        d.l1iMisses = l1iMisses - o.l1iMisses;
        d.l1dAccesses = l1dAccesses - o.l1dAccesses;
        d.l1dMisses = l1dMisses - o.l1dMisses;
        d.l2Accesses = l2Accesses - o.l2Accesses;
        d.l2Misses = l2Misses - o.l2Misses;
        return d;
    }

    HierarchyCounts &
    operator+=(const HierarchyCounts &o)
    {
        l1iAccesses += o.l1iAccesses;
        l1iMisses += o.l1iMisses;
        l1dAccesses += o.l1dAccesses;
        l1dMisses += o.l1dMisses;
        l2Accesses += o.l2Accesses;
        l2Misses += o.l2Misses;
        return *this;
    }
};

/**
 * The full cache/memory system. Stateless about time except for bus
 * occupancy: the caller passes the current cycle and receives the
 * access latency including bus queueing.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyParams &params);

    /**
     * Perform one demand access.
     *
     * Defined inline (below the class) so the dominant TLB-hit +
     * L1-hit chain collapses into the Cache::access header fast
     * paths at the call site; only misses leave the inlined code.
     *
     * @param addr  byte address
     * @param type  fetch / load / store
     * @param owner application or OS
     * @param now   current core cycle (for bus queueing)
     */
    AccessOutcome access(Addr addr, AccessType type, Owner owner,
                         Cycles now);

    /** L2-and-beyond half of access(), taken on an L1 miss. */
    AccessOutcome accessBeyondL1(Addr addr, bool is_write,
                                 Owner owner, Cycles now,
                                 AccessOutcome out);

    /** Would this access hit in its L1? (No state change; used by
     *  CPU models to decide MSHR admission before accessing.) */
    bool probeL1(Addr addr, AccessType type) const;

    /**
     * Functional-warming access: update TLB/L1/L2 contents (and the
     * per-owner hit/miss counters) exactly as access() would for the
     * same stream, but leave the bus-queueing clock untouched. Used
     * when fast-forwarding between sampled intervals, where there is
     * no meaningful "now" to charge queueing against — letting
     * warm-up misses occupy the bus would push busFreeAt far past
     * real time and tax the first post-warm-up demand accesses.
     */
    void warmAccess(Addr addr, AccessType type, Owner owner);

    /**
     * Inject predicted OS cache pollution (Sec. 4.5): displace the
     * given number of lines in each level.
     *
     * @param mode victim treatment (see Cache::PollutionMode)
     * @return slots actually affected, summed over the levels (see
     *         Cache::pollute for the clamping rules)
     */
    std::uint64_t pollute(std::uint64_t l1i_lines,
                          std::uint64_t l1d_lines,
                          std::uint64_t l2_lines,
                          Cache::PollutionMode mode =
                              Cache::PollutionMode::Install);

    /** Fill outcome of installLine(). */
    struct InstallOutcome
    {
        bool l1Fill = false;
        bool l2Fill = false;
    };

    /**
     * Footprint-faithful pollution: silently make one address a
     * skipped OS service touched resident in the right L1 and the
     * L2 (see Cache::install).
     */
    InstallOutcome installLine(Addr addr, bool is_code, Owner owner);

    /** Total (both-owner) counter snapshot, for interval deltas. */
    HierarchyCounts counts() const;

    /** Per-owner counter snapshot. */
    HierarchyCounts countsFor(Owner owner) const;

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }

    /** TLBs (null when disabled). */
    const Cache *itlb() const { return itlb_.get(); }
    const Cache *dtlb() const { return dtlb_.get(); }

    const HierarchyParams &params() const { return params_; }

    /** Drop all cached contents (statistics survive). */
    void flushAll();

    /** Zero all statistics (contents survive). */
    void resetStats();

  private:
    HierarchyParams params_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    std::unique_ptr<Cache> itlb_;
    std::unique_ptr<Cache> dtlb_;
    Cycles busFreeAt = 0;
};

inline AccessOutcome
MemoryHierarchy::access(Addr addr, AccessType type, Owner owner,
                        Cycles now)
{
    AccessOutcome out;
    bool is_fetch = (type == AccessType::InstFetch);
    bool is_write = (type == AccessType::Store);
    Cache &l1 = is_fetch ? l1i_ : l1d_;
    Cycles l1_lat =
        is_fetch ? params_.l1iHitLatency : params_.l1dHitLatency;

    // Address translation first.
    Cache *tlb = is_fetch ? itlb_.get() : dtlb_.get();
    if (tlb) {
        auto tlb_res = tlb->access(addr, false, owner);
        if (!tlb_res.hit) {
            out.tlbMiss = true;
            out.latency += params_.tlbMissPenalty;
        }
    }

    auto l1_res = l1.access(addr, is_write, owner);
    out.latency += l1_lat;
    if (l1_res.hit)
        return out;

    out.l1Miss = true;
    return accessBeyondL1(addr, is_write, owner, now, out);
}

inline void
MemoryHierarchy::warmAccess(Addr addr, AccessType type, Owner owner)
{
    bool is_fetch = (type == AccessType::InstFetch);
    bool is_write = (type == AccessType::Store);
    Cache &l1 = is_fetch ? l1i_ : l1d_;

    if (Cache *tlb = is_fetch ? itlb_.get() : dtlb_.get())
        tlb->access(addr, false, owner);

    if (l1.access(addr, is_write, owner).hit)
        return;
    if (l2_.access(addr, is_write, owner).hit)
        return;
    // Keep the prefetcher's content effect; its bus time is timing.
    if (params_.l2NextLinePrefetch)
        l2_.install(addr + l2_.lineBytes(), owner);
}

} // namespace osp

#endif // OSP_MEM_HIERARCHY_HH
