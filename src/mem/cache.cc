#include "cache.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace osp
{

namespace
{

bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Exact log2 of a power of two (C++20 countr_zero, no loop). */
std::uint32_t
log2u(std::uint64_t x)
{
    return static_cast<std::uint32_t>(std::countr_zero(x));
}

} // namespace

Cache::Cache(const CacheParams &params, std::uint64_t seed)
    : params_(params), rng(seed, 0x9e3779b97f4a7c15ULL)
{
    if (!isPowerOfTwo(params_.lineBytes) || params_.lineBytes < 2) {
        osp_fatal(params_.name,
                  ": line size must be a power of two >= 2");
    }
    if (params_.assoc == 0)
        osp_fatal(params_.name, ": associativity must be >= 1");
    if (params_.sizeBytes == 0 ||
        params_.sizeBytes % (static_cast<std::uint64_t>(
                                 params_.lineBytes) *
                             params_.assoc) != 0) {
        osp_fatal(params_.name,
                  ": size must be a positive multiple of line size"
                  " times associativity");
    }
    std::uint64_t sets =
        params_.sizeBytes /
        (static_cast<std::uint64_t>(params_.lineBytes) *
         params_.assoc);
    if (!isPowerOfTwo(sets))
        osp_fatal(params_.name, ": number of sets must be a power of"
                                " two, got ", sets);
    numSets_ = static_cast<std::uint32_t>(sets);
    lineShift = log2u(params_.lineBytes);
    std::size_t n = static_cast<std::size_t>(numSets_) * params_.assoc;
    lines.resize(n);
    tags_.assign(n, kInvalidTag);
    mruWay_.assign(numSets_, 0);
}

std::uint32_t
Cache::victimWay(std::uint32_t set)
{
    std::size_t base = static_cast<std::size_t>(set) * params_.assoc;
    // Invalid way first.
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (tags_[base + w] == kInvalidTag)
            return w;
    }
    if (params_.repl == ReplPolicy::Random)
        return rng.range(params_.assoc);
    const Line *ln = &lines[base];
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < params_.assoc; ++w) {
        if (ln[w].lruStamp < ln[victim].lruStamp)
            victim = w;
    }
    return victim;
}

Cache::AccessResult
Cache::accessSlow(std::uint32_t set, Addr tag, std::size_t base,
                  bool is_write, Owner owner)
{
    AccessResult result;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (tags_[base + w] == tag) {
            Line &line = lines[base + w];
            result.hit = true;
            line.lruStamp = lruClock;
            if (is_write)
                line.dirty = true;
            mruWay_[set] = w;
            return result;
        }
    }

    // Miss: allocate (write-allocate policy), evicting if needed.
    stats_.misses[static_cast<int>(owner)] += 1;
    std::uint32_t way = victimWay(set);
    Line &line = lines[base + way];
    if (line.valid) {
        stats_.evictions += 1;
        if (line.dirty) {
            stats_.writebacks += 1;
            result.writeback = true;
        }
        if (line.owner == Owner::App && owner == Owner::Os) {
            stats_.crossEvictions += 1;
            result.crossEviction = true;
        }
    }
    retag(base + way, true, owner);
    tags_[base + way] = tag;
    line.dirty = is_write;
    line.lruStamp = lruClock;
    mruWay_[set] = way;
    return result;
}

bool
Cache::install(Addr addr, Owner owner)
{
    std::uint32_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    std::size_t base = static_cast<std::size_t>(set) * params_.assoc;
    ++lruClock;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (tags_[base + w] == tag) {
            lines[base + w].lruStamp = lruClock;
            return false;
        }
    }
    std::uint32_t way = victimWay(set);
    Line &line = lines[base + way];
    if (line.valid)
        stats_.injectedEvictions += 1;
    stats_.injectedFills += 1;
    retag(base + way, true, owner);
    tags_[base + way] = tag;
    line.dirty = false;
    line.lruStamp = lruClock;
    mruWay_[set] = way;
    return true;
}

bool
Cache::probe(Addr addr) const
{
    std::uint32_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    std::size_t base = static_cast<std::size_t>(set) * params_.assoc;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (tags_[base + w] == tag)
            return true;
    }
    return false;
}

std::uint64_t
Cache::pollute(std::uint64_t count, PollutionMode mode)
{
    // Clamp invalidation requests to the lines that can actually be
    // evicted: beyond that every draw is a guaranteed no-op, and the
    // old unclamped loop both wasted RNG draws and let callers
    // believe a request larger than the cache was meaningful.
    if (mode == PollutionMode::InvalidateApp)
        count = std::min(count, residentLines(Owner::App));
    else if (mode == PollutionMode::InvalidateAny)
        count = std::min(count, residentLines());

    std::uint64_t affected = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint32_t set = rng.range(numSets_);
        std::size_t base =
            static_cast<std::size_t>(set) * params_.assoc;
        Line *ln = &lines[base];

        // Invalid slot first: a free victim for Install, a no-op
        // draw for the invalidating modes (Sec. 4.5 victim order).
        std::int32_t invalid_way = -1;
        for (std::uint32_t w = 0; w < params_.assoc; ++w) {
            if (!ln[w].valid) {
                invalid_way = static_cast<std::int32_t>(w);
                break;
            }
        }

        std::int32_t victim = -1;
        if (invalid_way >= 0) {
            if (mode != PollutionMode::Install)
                continue;
            victim = invalid_way;
        } else {
            // LRU among eligible lines, then more recently used.
            for (std::uint32_t w = 0; w < params_.assoc; ++w) {
                if (mode == PollutionMode::InvalidateApp &&
                    ln[w].owner != Owner::App) {
                    continue;
                }
                if (victim < 0 ||
                    ln[w].lruStamp < ln[victim].lruStamp) {
                    victim = static_cast<std::int32_t>(w);
                }
            }
            if (victim < 0)
                continue;
        }

        std::size_t idx = base + static_cast<std::size_t>(victim);
        Line &line = lines[idx];
        bool evicted = line.valid;
        if (mode == PollutionMode::Install) {
            // Synthetic fill: a tag outside the architectural
            // address space so it can never hit, owned by the OS,
            // MRU (the skipped service just touched it).
            retag(idx, true, Owner::Os);
            tags_[idx] = (1ULL << 52) + syntheticTag++;
            line.dirty = false;
            line.lruStamp = ++lruClock;
            stats_.injectedFills += 1;
        } else {
            retag(idx, false, line.owner);
            line.dirty = false;
        }
        // Only a displaced valid line is an eviction; filling an
        // invalid slot used to be over-reported here.
        if (evicted)
            stats_.injectedEvictions += 1;
        ++affected;
    }
    return affected;
}

void
Cache::flush()
{
    for (Line &line : lines) {
        line.valid = false;
        line.dirty = false;
        line.lruStamp = 0;
    }
    std::fill(tags_.begin(), tags_.end(), kInvalidTag);
    std::fill(mruWay_.begin(), mruWay_.end(), 0u);
    validLines_[0] = 0;
    validLines_[1] = 0;
    // With every line invalid this state is unobservable; rewinding
    // it makes a reused cache's LRU stamps and synthetic tags
    // independent of prior-run history (see header comment).
    lruClock = 0;
    syntheticTag = 0;
}

} // namespace osp
