#include "learning_window.hh"

#include <cmath>

#include "util/logging.hh"

namespace osp
{

double
probOccursAtLeastOnce(double p, std::uint64_t n)
{
    if (p <= 0.0)
        return 0.0;
    if (p >= 1.0)
        return n >= 1 ? 1.0 : 0.0;
    return 1.0 - std::pow(1.0 - p, static_cast<double>(n));
}

double
binomialPmf(std::uint64_t n, std::uint64_t k, double p)
{
    if (k > n)
        return 0.0;
    if (p <= 0.0)
        return k == 0 ? 1.0 : 0.0;
    if (p >= 1.0)
        return k == n ? 1.0 : 0.0;
    double log_pmf = std::lgamma(static_cast<double>(n) + 1.0) -
                     std::lgamma(static_cast<double>(k) + 1.0) -
                     std::lgamma(static_cast<double>(n - k) + 1.0) +
                     static_cast<double>(k) * std::log(p) +
                     static_cast<double>(n - k) * std::log(1.0 - p);
    return std::exp(log_pmf);
}

double
binomialTailAtLeast(std::uint64_t n, std::uint64_t k, double p)
{
    if (k == 0)
        return 1.0;
    // P(X >= k) = 1 - P(X <= k-1); sum whichever side is shorter.
    double cdf = 0.0;
    for (std::uint64_t i = 0; i < k; ++i)
        cdf += binomialPmf(n, i, p);
    if (cdf > 1.0)
        cdf = 1.0;
    return 1.0 - cdf;
}

std::uint64_t
learningWindowSize(double p_min, double doc)
{
    if (p_min <= 0.0 || p_min >= 1.0)
        osp_fatal("learningWindowSize: p_min must be in (0,1), got ",
                  p_min);
    if (doc <= 0.0 || doc >= 1.0)
        osp_fatal("learningWindowSize: doc must be in (0,1), got ",
                  doc);
    double n = std::log(1.0 - doc) / std::log(1.0 - p_min);
    auto window = static_cast<std::uint64_t>(std::ceil(n));
    if (window < 1)
        window = 1;
    return window;
}

} // namespace osp
