/**
 * @file
 * Deterministic stratified interval sampling (Ekman-style two-phase
 * sampling): a seeded k-means clusterer over per-interval feature
 * vectors, a per-stratum sample draw with proportional or Neyman
 * allocation, and the classic stratified-total estimator with a
 * Student-t confidence interval.
 *
 * Everything is a pure function of (inputs, params): k-means uses a
 * seeded first pick plus farthest-point init, Lloyd iterations break
 * ties toward the lowest centroid index, and each stratum's draw
 * uses its own Pcg32 stream — so the result is independent of
 * thread count, iteration order and platform.
 */

#ifndef OSP_STATS_STRATIFY_HH
#define OSP_STATS_STRATIFY_HH

#include <cstdint>
#include <vector>

namespace osp
{

/** Knobs for stratification and the stratified draw. */
struct StratifyParams
{
    /** How sample sizes are split across strata. */
    enum class Allocation : std::uint8_t
    {
        /** n_h proportional to stratum population N_h. */
        Proportional = 0,
        /** n_h proportional to N_h * s_h (s_h = stddev of the cost
         *  proxy within the stratum); minimizes estimator variance
         *  for a fixed total sample size. */
        Neyman = 1,
    };

    std::uint32_t strata = 4;        //!< requested cluster count k
    double rate = 0.25;              //!< target sampled fraction
    Allocation allocation = Allocation::Proportional;
    std::uint64_t seed = 1;          //!< drives init pick + draws
    std::uint32_t maxIters = 32;     //!< Lloyd iteration cap
    /** Floor on n_h (clamped to N_h); >= 2 keeps per-stratum
     *  variance estimable wherever the population allows it. */
    std::uint32_t minPerStratum = 2;
};

const char *allocationName(StratifyParams::Allocation a);

/** Cluster labels for a population of intervals. */
struct StrataAssignment
{
    std::uint32_t numStrata = 0;            //!< actual k used
    std::vector<std::uint32_t> assignment;  //!< stratum per interval
    std::vector<std::uint64_t> population;  //!< N_h per stratum
};

/**
 * Cluster @p features (one row per interval, equal-length rows) into
 * at most params.strata groups. Columns are z-score normalized
 * internally; constant columns are ignored. Deterministic in
 * (features, params).
 */
StrataAssignment
stratifyIntervals(const std::vector<std::vector<double>> &features,
                  const StratifyParams &params);

/**
 * Draw a seeded per-stratum sample without replacement. @p costProxy
 * (one scalar per interval; may be empty for proportional
 * allocation) feeds Neyman allocation. Returns sorted interval
 * indices.
 */
std::vector<std::uint64_t>
drawStratifiedSample(const StrataAssignment &strata,
                     const StratifyParams &params,
                     const std::vector<double> &costProxy);

/** Per-stratum slice of the estimate, for reporting. */
struct StratumEstimate
{
    std::uint64_t population = 0;  //!< N_h
    std::uint64_t sampled = 0;     //!< n_h
    double mean = 0.0;             //!< sample mean of the value
    double sampleVar = 0.0;        //!< unbiased sample variance
};

/** Whole-population total reconstructed from a stratified sample. */
struct StratifiedEstimate
{
    double total = 0.0;     //!< sum_h N_h * mean_h
    double variance = 0.0;  //!< Var(total) with fpc
    std::uint64_t df = 0;   //!< sum_h (n_h - 1)
    double ci95Half = 0.0;  //!< t(df, 0.025) * sqrt(variance)
    bool hasCi = false;     //!< df >= 1
    std::vector<StratumEstimate> strata;
};

/**
 * Expand per-sample values to a population total: total =
 * sum_h N_h * mean_h, with the finite-population-corrected variance
 * sum_h N_h^2 (1 - n_h/N_h) s_h^2 / n_h and a symmetric Student-t
 * 95% interval on sum_h (n_h - 1) degrees of freedom.
 *
 * @p sampleIndex/@p sampleValues are parallel arrays: the sampled
 * interval indices (into strata.assignment) and the measured value
 * of each.
 */
StratifiedEstimate
estimateStratifiedTotal(const StrataAssignment &strata,
                        const std::vector<std::uint64_t> &sampleIndex,
                        const std::vector<double> &sampleValues);

} // namespace osp

#endif // OSP_STATS_STRATIFY_HH
