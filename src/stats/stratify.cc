#include "stratify.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "running_stats.hh"
#include "student_t.hh"
#include "util/random.hh"

namespace osp
{

const char *
allocationName(StratifyParams::Allocation a)
{
    switch (a) {
      case StratifyParams::Allocation::Proportional:
        return "proportional";
      case StratifyParams::Allocation::Neyman: return "neyman";
    }
    return "?";
}

namespace
{

/** Column-wise z-score normalization; constant columns become 0 so
 *  they cannot dominate (or contribute to) any distance. */
std::vector<std::vector<double>>
normalize(const std::vector<std::vector<double>> &features)
{
    const std::size_t n = features.size();
    const std::size_t dims = n ? features[0].size() : 0;
    std::vector<double> mean(dims, 0.0);
    std::vector<double> sd(dims, 0.0);
    for (std::size_t d = 0; d < dims; ++d) {
        RunningStats s;
        for (const auto &row : features)
            s.add(row[d]);
        mean[d] = s.mean();
        sd[d] = s.stddev();
    }
    std::vector<std::vector<double>> out(
        n, std::vector<double>(dims, 0.0));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t d = 0; d < dims; ++d)
            out[i][d] = sd[d] > 0.0
                            ? (features[i][d] - mean[d]) / sd[d]
                            : 0.0;
    return out;
}

double
dist2(const std::vector<double> &a, const std::vector<double> &b)
{
    double acc = 0.0;
    for (std::size_t d = 0; d < a.size(); ++d) {
        double diff = a[d] - b[d];
        acc += diff * diff;
    }
    return acc;
}

} // namespace

StrataAssignment
stratifyIntervals(const std::vector<std::vector<double>> &features,
                  const StratifyParams &params)
{
    StrataAssignment out;
    const std::size_t n = features.size();
    if (n == 0)
        return out;

    const std::uint32_t k = static_cast<std::uint32_t>(std::min<
        std::size_t>(std::max<std::uint32_t>(params.strata, 1), n));
    auto pts = normalize(features);

    // Seeded first pick, then deterministic farthest-point init
    // (ties -> lowest index). One RNG draw total, so the seed fixes
    // the whole clustering.
    Pcg32 rng(params.seed, 0x57A717FULL);
    std::vector<std::vector<double>> centroids;
    centroids.reserve(k);
    centroids.push_back(
        pts[static_cast<std::size_t>(rng.range64(n))]);
    std::vector<double> best(n,
                             std::numeric_limits<double>::max());
    while (centroids.size() < k) {
        for (std::size_t i = 0; i < n; ++i)
            best[i] =
                std::min(best[i], dist2(pts[i], centroids.back()));
        std::size_t far = 0;
        for (std::size_t i = 1; i < n; ++i)
            if (best[i] > best[far])
                far = i;
        centroids.push_back(pts[far]);
    }

    std::vector<std::uint32_t> assign(n, 0);
    std::vector<std::uint64_t> pop(k, 0);
    for (std::uint32_t iter = 0; iter < params.maxIters; ++iter) {
        bool changed = iter == 0;
        for (std::size_t i = 0; i < n; ++i) {
            std::uint32_t pick = 0;
            double d = dist2(pts[i], centroids[0]);
            for (std::uint32_t c = 1; c < k; ++c) {
                double dc = dist2(pts[i], centroids[c]);
                if (dc < d) {  // strict: ties keep the lowest index
                    d = dc;
                    pick = c;
                }
            }
            if (pick != assign[i]) {
                assign[i] = pick;
                changed = true;
            }
        }
        if (!changed)
            break;

        std::fill(pop.begin(), pop.end(), 0);
        for (std::size_t i = 0; i < n; ++i)
            ++pop[assign[i]];
        // An empty cluster steals the point farthest from its
        // current centroid (tie -> lowest index).
        for (std::uint32_t c = 0; c < k; ++c) {
            if (pop[c] != 0)
                continue;
            std::size_t far = n;
            double fd = -1.0;
            for (std::size_t i = 0; i < n; ++i) {
                if (pop[assign[i]] <= 1)
                    continue;
                double d = dist2(pts[i], centroids[assign[i]]);
                if (d > fd) {
                    fd = d;
                    far = i;
                }
            }
            if (far == n)
                continue;
            --pop[assign[far]];
            assign[far] = c;
            ++pop[c];
        }

        const std::size_t dims = pts[0].size();
        for (auto &c : centroids)
            std::fill(c.begin(), c.end(), 0.0);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t d = 0; d < dims; ++d)
                centroids[assign[i]][d] += pts[i][d];
        for (std::uint32_t c = 0; c < k; ++c)
            if (pop[c])
                for (std::size_t d = 0; d < dims; ++d)
                    centroids[c][d] /=
                        static_cast<double>(pop[c]);
    }

    std::fill(pop.begin(), pop.end(), 0);
    for (std::size_t i = 0; i < n; ++i)
        ++pop[assign[i]];

    out.numStrata = k;
    out.assignment = std::move(assign);
    out.population = std::move(pop);
    return out;
}

std::vector<std::uint64_t>
drawStratifiedSample(const StrataAssignment &strata,
                     const StratifyParams &params,
                     const std::vector<double> &costProxy)
{
    const std::size_t n = strata.assignment.size();
    const std::uint32_t k = strata.numStrata;
    std::vector<std::uint64_t> out;
    if (n == 0 || k == 0)
        return out;

    // Per-stratum member lists in ascending interval order.
    std::vector<std::vector<std::uint64_t>> members(k);
    for (std::size_t i = 0; i < n; ++i)
        members[strata.assignment[i]].push_back(i);

    auto floorFor = [&](std::uint64_t pop) {
        return std::min<std::uint64_t>(params.minPerStratum, pop);
    };

    const double rate = std::clamp(params.rate, 0.0, 1.0);
    std::vector<std::uint64_t> take(k, 0);
    bool neyman =
        params.allocation == StratifyParams::Allocation::Neyman &&
        costProxy.size() == n;
    if (neyman) {
        std::vector<double> weight(k, 0.0);
        double wsum = 0.0;
        for (std::uint32_t h = 0; h < k; ++h) {
            RunningStats s;
            for (std::uint64_t i : members[h])
                s.add(costProxy[static_cast<std::size_t>(i)]);
            weight[h] = static_cast<double>(members[h].size()) *
                        s.stddev();
            wsum += weight[h];
        }
        if (wsum <= 0.0) {
            neyman = false;  // degenerate proxy: fall back
        } else {
            double target = rate * static_cast<double>(n);
            // Floor shares, then hand out the remainder by largest
            // fractional part (tie -> lowest stratum index).
            std::vector<double> frac(k, 0.0);
            double assigned = 0.0;
            for (std::uint32_t h = 0; h < k; ++h) {
                double share = target * weight[h] / wsum;
                take[h] = static_cast<std::uint64_t>(share);
                frac[h] = share - static_cast<double>(take[h]);
                assigned += static_cast<double>(take[h]);
            }
            auto left = static_cast<std::uint64_t>(
                target - assigned + 0.5);
            for (std::uint64_t r = 0; r < left; ++r) {
                std::uint32_t pick = 0;
                for (std::uint32_t h = 1; h < k; ++h)
                    if (frac[h] > frac[pick])
                        pick = h;
                ++take[pick];
                frac[pick] = -1.0;
            }
        }
    }
    for (std::uint32_t h = 0; h < k; ++h) {
        const auto pop =
            static_cast<std::uint64_t>(members[h].size());
        if (!neyman)
            take[h] = static_cast<std::uint64_t>(
                rate * static_cast<double>(pop) + 0.5);
        take[h] = std::clamp<std::uint64_t>(take[h], floorFor(pop),
                                            pop);
    }

    // Partial Fisher-Yates per stratum, each on its own stream:
    // the draw for stratum h never depends on any other stratum.
    for (std::uint32_t h = 0; h < k; ++h) {
        auto &m = members[h];
        Pcg32 rng(params.seed, 0xD4A90000ULL + h);
        for (std::uint64_t j = 0; j < take[h]; ++j) {
            std::uint64_t pick =
                j + rng.range64(m.size() - static_cast<std::size_t>(j));
            std::swap(m[static_cast<std::size_t>(j)],
                      m[static_cast<std::size_t>(pick)]);
            out.push_back(m[static_cast<std::size_t>(j)]);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

StratifiedEstimate
estimateStratifiedTotal(const StrataAssignment &strata,
                        const std::vector<std::uint64_t> &sampleIndex,
                        const std::vector<double> &sampleValues)
{
    StratifiedEstimate est;
    const std::uint32_t k = strata.numStrata;
    est.strata.resize(k);
    for (std::uint32_t h = 0; h < k; ++h)
        est.strata[h].population = strata.population[h];

    std::vector<RunningStats> per(k);
    for (std::size_t j = 0;
         j < sampleIndex.size() && j < sampleValues.size(); ++j) {
        auto i = static_cast<std::size_t>(sampleIndex[j]);
        if (i >= strata.assignment.size())
            continue;
        per[strata.assignment[i]].add(sampleValues[j]);
    }

    for (std::uint32_t h = 0; h < k; ++h) {
        auto &s = est.strata[h];
        s.sampled = per[h].count();
        s.mean = per[h].mean();
        s.sampleVar = per[h].sampleVariance();
        const auto nh = static_cast<double>(s.sampled);
        const auto Nh = static_cast<double>(s.population);
        if (s.sampled == 0)
            continue;
        est.total += Nh * s.mean;
        if (s.sampled >= 2 && s.sampled < s.population) {
            est.variance +=
                Nh * Nh * (1.0 - nh / Nh) * s.sampleVar / nh;
        }
        est.df += s.sampled - 1;
    }
    if (est.df >= 1) {
        est.hasCi = true;
        est.ci95Half = studentTCritical(est.df, 0.025) *
                       std::sqrt(std::max(est.variance, 0.0));
    }
    return est;
}

} // namespace osp
