/**
 * @file
 * One-sided Student's-t critical values and the EPO upper bound of
 * Eq. 8.
 *
 * The Statistical re-learning strategy (Sec. 4.4) collects estimated
 * probabilities of occurrence (EPOs) p_y^1..p_y^m of an outlier
 * cluster y and upper-bounds the true probability of occurrence with
 *
 *     B_y = mean(EPO) + t_{m-1, alpha} * stddev(EPO) / sqrt(m)
 *
 * at 95% one-sided confidence (alpha = 0.05). Re-learning triggers
 * when B_y >= p_min, i.e. when we can no longer be 95% confident the
 * cluster is too rare to matter.
 */

#ifndef OSP_STATS_STUDENT_T_HH
#define OSP_STATS_STUDENT_T_HH

#include <cstdint>
#include <vector>

namespace osp
{

/**
 * One-sided critical value t_{df, alpha} of Student's t
 * distribution.
 *
 * Supported alpha values: 0.10, 0.05, 0.025, 0.01 (anything else is
 * a fatal configuration error). df must be >= 1; values between
 * table rows are linearly interpolated in 1/df, which matches the
 * standard-table convention for large df.
 */
double studentTCritical(std::uint64_t df, double alpha);

/**
 * The Eq. 8 upper bound B_y on a true probability given sample
 * estimates.
 *
 * @param epos  the collected estimates (m >= 2 required; with m < 2
 *              the bound is meaningless and +infinity is returned)
 * @param alpha one-sided significance level (paper: 0.05)
 */
double epoUpperBound(const std::vector<double> &epos,
                     double alpha = 0.05);

} // namespace osp

#endif // OSP_STATS_STUDENT_T_HH
