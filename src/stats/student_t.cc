#include "student_t.hh"

#include <cmath>
#include <limits>

#include "running_stats.hh"
#include "util/logging.hh"

namespace osp
{

namespace
{

/** Degrees of freedom rows of the embedded critical-value table. */
const std::uint64_t tableDf[] = {
    1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14,
    15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28,
    29, 30, 40, 60, 120,
};

constexpr int numRows = sizeof(tableDf) / sizeof(tableDf[0]);

/** One-sided critical values, alpha = 0.10. */
const double t010[] = {
    3.078, 1.886, 1.638, 1.533, 1.476, 1.440, 1.415, 1.397, 1.383,
    1.372, 1.363, 1.356, 1.350, 1.345, 1.341, 1.337, 1.333, 1.330,
    1.328, 1.325, 1.323, 1.321, 1.319, 1.318, 1.316, 1.315, 1.314,
    1.313, 1.311, 1.310, 1.303, 1.296, 1.289,
};
const double t010inf = 1.282;

/** One-sided critical values, alpha = 0.05. */
const double t005[] = {
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
    1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734,
    1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703,
    1.701, 1.699, 1.697, 1.684, 1.671, 1.658,
};
const double t005inf = 1.645;

/** One-sided critical values, alpha = 0.025. */
const double t0025[] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048,  2.045, 2.042, 2.021, 2.000, 1.980,
};
const double t0025inf = 1.960;

/** One-sided critical values, alpha = 0.01. */
const double t001[] = {
    31.821, 6.965, 4.541, 3.747, 3.365, 3.143, 2.998, 2.896, 2.821,
    2.764,  2.718, 2.681, 2.650, 2.624, 2.602, 2.583, 2.567, 2.552,
    2.539,  2.528, 2.518, 2.508, 2.500, 2.492, 2.485, 2.479, 2.473,
    2.467,  2.462, 2.457, 2.423, 2.390, 2.358,
};
const double t001inf = 2.326;

struct AlphaTable
{
    double alpha;
    const double *values;
    double infValue;
};

const AlphaTable alphaTables[] = {
    {0.10, t010, t010inf},
    {0.05, t005, t005inf},
    {0.025, t0025, t0025inf},
    {0.01, t001, t001inf},
};

const AlphaTable *
findTable(double alpha)
{
    for (const auto &table : alphaTables) {
        if (std::fabs(table.alpha - alpha) < 1e-9)
            return &table;
    }
    return nullptr;
}

} // namespace

double
studentTCritical(std::uint64_t df, double alpha)
{
    if (df < 1)
        osp_fatal("studentTCritical: df must be >= 1");
    const AlphaTable *table = findTable(alpha);
    if (!table) {
        osp_fatal("studentTCritical: unsupported alpha ", alpha,
                  " (supported: 0.10, 0.05, 0.025, 0.01)");
    }

    // Exact row?
    for (int i = 0; i < numRows; ++i) {
        if (tableDf[i] == df)
            return table->values[i];
    }
    if (df > tableDf[numRows - 1]) {
        // Interpolate between the last row and infinity in 1/df.
        double x0 = 1.0 / static_cast<double>(tableDf[numRows - 1]);
        double x = 1.0 / static_cast<double>(df);
        double y0 = table->values[numRows - 1];
        double yinf = table->infValue;
        return yinf + (y0 - yinf) * (x / x0);
    }
    // Between two tabulated rows (only possible for df in (30, 120)
    // not equal to 40/60; dense rows cover df <= 30).
    for (int i = 0; i + 1 < numRows; ++i) {
        if (tableDf[i] < df && df < tableDf[i + 1]) {
            double x0 = 1.0 / static_cast<double>(tableDf[i]);
            double x1 = 1.0 / static_cast<double>(tableDf[i + 1]);
            double x = 1.0 / static_cast<double>(df);
            double y0 = table->values[i];
            double y1 = table->values[i + 1];
            return y1 + (y0 - y1) * (x - x1) / (x0 - x1);
        }
    }
    osp_panic("studentTCritical: unreachable df lookup for df=", df);
}

double
epoUpperBound(const std::vector<double> &epos, double alpha)
{
    if (epos.size() < 2)
        return std::numeric_limits<double>::infinity();
    RunningStats stats;
    for (double epo : epos)
        stats.add(epo);
    double m = static_cast<double>(epos.size());
    double t = studentTCritical(epos.size() - 1, alpha);
    return stats.mean() + t * stats.sampleStddev() / std::sqrt(m);
}

} // namespace osp
