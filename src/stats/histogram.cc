#include "histogram.hh"

#include <cmath>

#include "util/logging.hh"

namespace osp
{

Histogram::Histogram(double bin_width, double orig)
    : binWidth(bin_width), origin(orig)
{
    if (bin_width <= 0.0)
        osp_panic("Histogram bin width must be positive");
}

void
Histogram::add(double x)
{
    bins[binOf(x)] += 1;
    total += 1;
}

std::int64_t
Histogram::binOf(double x) const
{
    return static_cast<std::int64_t>(
        std::floor((x - origin) / binWidth));
}

double
Histogram::binCenter(std::int64_t bin) const
{
    return origin + (static_cast<double>(bin) + 0.5) * binWidth;
}

std::uint64_t
Histogram::countAt(std::int64_t bin) const
{
    auto it = bins.find(bin);
    return it == bins.end() ? 0 : it->second;
}

std::vector<std::pair<std::int64_t, std::uint64_t>>
Histogram::nonEmpty() const
{
    return {bins.begin(), bins.end()};
}

BubbleHistogram::BubbleHistogram(double x_bin_width, double y_bin_width)
    : xWidth(x_bin_width), yWidth(y_bin_width)
{
    if (x_bin_width <= 0.0 || y_bin_width <= 0.0)
        osp_panic("BubbleHistogram bin widths must be positive");
}

void
BubbleHistogram::add(double x, double y)
{
    auto xb = static_cast<std::int64_t>(std::floor(x / xWidth));
    auto yb = static_cast<std::int64_t>(std::floor(y / yWidth));
    cells[{xb, yb}] += 1;
    total += 1;
}

std::vector<BubbleHistogram::Bubble>
BubbleHistogram::bubbles() const
{
    std::vector<Bubble> out;
    out.reserve(cells.size());
    for (const auto &[key, count] : cells) {
        Bubble b;
        b.xBin = key.first;
        b.yBin = key.second;
        b.xCenter = (static_cast<double>(key.first) + 0.5) * xWidth;
        b.yCenter = (static_cast<double>(key.second) + 0.5) * yWidth;
        b.count = count;
        out.push_back(b);
    }
    return out;
}

} // namespace osp
