/**
 * @file
 * Fixed-bin 1-D histograms and 2-D "bubble" histograms.
 *
 * Figure 5 of the paper plots occurrences of sys_read invocations in
 * (instruction-count x cycle-count) bins of 1000 instructions by 4000
 * cycles, with bubble area proportional to the bin population.
 * BubbleHistogram reproduces that binning exactly.
 */

#ifndef OSP_STATS_HISTOGRAM_HH
#define OSP_STATS_HISTOGRAM_HH

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace osp
{

/**
 * A 1-D histogram with uniform bin width. Bin i covers
 * [origin + i*width, origin + (i+1)*width).
 */
class Histogram
{
  public:
    /** @param bin_width width of every bin (must be > 0)
     *  @param origin    left edge of bin 0 */
    explicit Histogram(double bin_width, double origin = 0.0);

    /** Add one sample. */
    void add(double x);

    /** Index of the bin a value falls into (may be negative). */
    std::int64_t binOf(double x) const;

    /** Center of the given bin. */
    double binCenter(std::int64_t bin) const;

    /** Population of the given bin (0 if never touched). */
    std::uint64_t countAt(std::int64_t bin) const;

    /** Total number of samples added. */
    std::uint64_t totalCount() const { return total; }

    /** All non-empty bins in ascending bin order. */
    std::vector<std::pair<std::int64_t, std::uint64_t>> nonEmpty()
        const;

  private:
    double binWidth;
    double origin;
    std::uint64_t total = 0;
    std::map<std::int64_t, std::uint64_t> bins;
};

/**
 * A sparse 2-D histogram over (x, y) bins; each non-empty cell is a
 * "bubble" whose weight is its population (Fig. 5).
 */
class BubbleHistogram
{
  public:
    /** A non-empty (x-bin, y-bin) cell. */
    struct Bubble
    {
        std::int64_t xBin;       //!< x bin index
        std::int64_t yBin;       //!< y bin index
        double xCenter;          //!< center of the x bin
        double yCenter;          //!< center of the y bin
        std::uint64_t count;     //!< population
    };

    /** @param x_bin_width width of x bins (e.g. 1000 instructions)
     *  @param y_bin_width width of y bins (e.g. 4000 cycles) */
    BubbleHistogram(double x_bin_width, double y_bin_width);

    /** Add one (x, y) sample. */
    void add(double x, double y);

    /** Total number of samples added. */
    std::uint64_t totalCount() const { return total; }

    /** Number of non-empty cells (distinct bubbles). */
    std::size_t numBubbles() const { return cells.size(); }

    /** All bubbles, sorted by (xBin, yBin). */
    std::vector<Bubble> bubbles() const;

  private:
    double xWidth;
    double yWidth;
    std::uint64_t total = 0;
    std::map<std::pair<std::int64_t, std::int64_t>, std::uint64_t>
        cells;
};

} // namespace osp

#endif // OSP_STATS_HISTOGRAM_HH
