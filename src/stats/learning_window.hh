/**
 * @file
 * The statically-derived initial learning window of Sec. 4.3.
 *
 * The paper models the capture of a behaviour cluster x with
 * probability of occurrence px over a learning window of N
 * invocations as a binomial process (Eq. 1). The probability that x
 * appears at least once in N i.i.d. trials (Eq. 2) is
 *
 *     P(k >= 1) = 1 - (1 - px)^N
 *
 * and the initial learning window is the smallest N such that this
 * probability reaches the chosen degree of confidence for every
 * cluster whose probability of occurrence is at least pmin (Eq. 3).
 * With pmin = 3% this gives N = 99 at 95% confidence (the paper
 * rounds to 100) and N = 152 at 99% ("a little bit over 150").
 */

#ifndef OSP_STATS_LEARNING_WINDOW_HH
#define OSP_STATS_LEARNING_WINDOW_HH

#include <cstdint>

namespace osp
{

/** Probability that an event with per-trial probability p occurs at
 *  least once in n independent trials: 1 - (1-p)^n (Eq. 2). */
double probOccursAtLeastOnce(double p, std::uint64_t n);

/** Binomial probability mass: P(exactly k successes in n trials with
 *  per-trial probability p) (Eq. 1). Computed in log space so large n
 *  does not overflow. */
double binomialPmf(std::uint64_t n, std::uint64_t k, double p);

/** Binomial upper tail: P(at least k successes in n trials). */
double binomialTailAtLeast(std::uint64_t n, std::uint64_t k, double p);

/**
 * Smallest learning window N such that a cluster with probability of
 * occurrence >= p_min is seen at least once with probability >= doc
 * (Eq. 3): N = ceil(ln(1 - doc) / ln(1 - p_min)).
 *
 * @param p_min minimum probability of occurrence worth capturing
 *              (the paper uses 0.03)
 * @param doc   degree of confidence in (0, 1) (the paper uses 0.95
 *              and 0.99)
 */
std::uint64_t learningWindowSize(double p_min, double doc);

} // namespace osp

#endif // OSP_STATS_LEARNING_WINDOW_HH
