/**
 * @file
 * Online (single-pass) summary statistics.
 *
 * Welford's algorithm keeps the running mean and sum of squared
 * deviations, so mean/stddev/CV are available at any time without
 * storing samples and without the catastrophic cancellation of the
 * naive sum-of-squares formula. The paper relies on these statistics
 * twice: per-cluster performance records in the PLT (Sec. 4.3) and
 * the coefficient-of-variation cluster-quality metric (Fig. 6).
 */

#ifndef OSP_STATS_RUNNING_STATS_HH
#define OSP_STATS_RUNNING_STATS_HH

#include <cmath>
#include <cstdint>
#include <limits>

namespace osp
{

/**
 * Single-pass mean / variance / min / max accumulator (Welford).
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        count_ += 1;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2 += delta * (x - mean_);
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
        sum_ += x;
    }

    /** Merge another accumulator into this one (parallel Welford). */
    void
    merge(const RunningStats &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        std::uint64_t n = count_ + other.count_;
        double delta = other.mean_ - mean_;
        double na = static_cast<double>(count_);
        double nb = static_cast<double>(other.count_);
        m2 += other.m2 + delta * delta * na * nb / (na + nb);
        mean_ = (na * mean_ + nb * other.mean_) / (na + nb);
        count_ = n;
        if (other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
        sum_ += other.sum_;
    }

    /** Discard all samples. */
    void
    reset()
    {
        *this = RunningStats();
    }

    /**
     * Reduce the effective sample weight to at most @p max_count,
     * preserving the mean and variance. Subsequent samples then
     * move the mean as if only max_count members had been seen —
     * the re-weighting a drift reset needs: external evidence says
     * the distribution shifted, so thousands of stale samples must
     * not be allowed to pin the mean against a fresh window.
     */
    void
    clampWeight(std::uint64_t max_count)
    {
        if (count_ <= max_count)
            return;
        double scale = static_cast<double>(max_count) /
                       static_cast<double>(count_);
        m2 *= scale;
        count_ = max_count;
        sum_ = mean_ * static_cast<double>(max_count);
    }

    /**
     * Reconstruct an accumulator from saved moments (PLT
     * serialization). m2 is the sum of squared deviations
     * (population variance times count).
     */
    static RunningStats
    fromMoments(std::uint64_t count, double mean, double m2,
                double min_v, double max_v)
    {
        RunningStats s;
        if (count == 0)
            return s;
        s.count_ = count;
        s.mean_ = mean;
        s.m2 = m2;
        s.sum_ = mean * static_cast<double>(count);
        s.min_ = min_v;
        s.max_ = max_v;
        return s;
    }

    /** Number of samples seen. */
    std::uint64_t count() const { return count_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Arithmetic mean (0 with no samples). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance (divides by n). */
    double
    variance() const
    {
        return count_ ? m2 / static_cast<double>(count_) : 0.0;
    }

    /** Sample variance (divides by n-1; 0 for fewer than 2 samples). */
    double
    sampleVariance() const
    {
        return count_ > 1 ? m2 / static_cast<double>(count_ - 1) : 0.0;
    }

    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Sample standard deviation. */
    double sampleStddev() const { return std::sqrt(sampleVariance()); }

    /**
     * Coefficient of variation: stddev / mean, the cluster-uniformity
     * metric of Fig. 6 (0 when the mean is 0).
     */
    double
    cv() const
    {
        double m = mean();
        return m != 0.0 ? stddev() / std::fabs(m) : 0.0;
    }

    /** Minimum sample (+inf with no samples). */
    double
    min() const
    {
        return count_ ? min_ : std::numeric_limits<double>::infinity();
    }

    /** Maximum sample (-inf with no samples). */
    double
    max() const
    {
        return count_ ? max_
                      : -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2 = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace osp

#endif // OSP_STATS_RUNNING_STATS_HH
