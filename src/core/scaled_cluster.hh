/**
 * @file
 * Scaled clusters (Sec. 4.2).
 *
 * A behaviour point manifests as invocations with similar dynamic
 * instruction counts. Fixed-size instruction bins are too coarse for
 * small services and too fine for large ones, so the paper uses
 * *scaled* clusters: a centroid (the running mean of member
 * signatures) with a range of centroid +- 5%. An instance matches a
 * cluster when its instruction count falls inside the range; when
 * ranges overlap, the cluster with the closest centroid wins.
 * Adding an instance updates the centroid and range.
 */

#ifndef OSP_CORE_SCALED_CLUSTER_HH
#define OSP_CORE_SCALED_CLUSTER_HH

#include <cstdint>

#include "perf_record.hh"
#include "stats/running_stats.hh"

namespace osp
{

/**
 * Serializable summary of one cluster: enough to rebuild matching
 * and prediction state (PLT persistence / cross-run reuse).
 */
struct ClusterSnapshot
{
    std::uint64_t count = 0;
    double instMean = 0.0;
    double instM2 = 0.0;
    double cyclesMean = 0.0;
    double cyclesM2 = 0.0;
    double ipcMean = 0.0;
    double l1iAccMean = 0.0;
    double l1iMissMean = 0.0;
    double l1dAccMean = 0.0;
    double l1dMissMean = 0.0;
    double l2AccMean = 0.0;
    double l2MissMean = 0.0;
};

/** See file comment. */
class ScaledCluster
{
  public:
    /**
     * Create a cluster from its first member.
     *
     * @param first      first member's performance record
     * @param range_frac half-width of the range as a fraction of the
     *                   centroid (the paper uses 0.05)
     * @param ema_alpha  recency weight for the predicted metrics:
     *                   0 (the paper's formulation) predicts the
     *                   all-time member mean; >0 predicts an
     *                   exponentially-weighted moving average, so a
     *                   cluster whose cycles drift (same signature,
     *                   changing memory-system pressure) tracks
     *                   reality as audit samples arrive
     */
    explicit ScaledCluster(const ServiceMetrics &first,
                           double range_frac = 0.05,
                           double ema_alpha = 0.0);

    /** Rebuild a cluster from a snapshot (PLT persistence). */
    ScaledCluster(const ClusterSnapshot &snapshot,
                  double range_frac, double ema_alpha = 0.0);

    /** Serializable summary of this cluster. */
    ClusterSnapshot snapshot() const;

    /** Add a member; updates the centroid, range and statistics. */
    void add(const ServiceMetrics &m);

    /**
     * Clamp the weight of the accumulated history to @p max_count
     * samples, preserving every mean (and so the centroid, range
     * and current prediction) and variance. Called on a drift
     * reset: audits proved the cluster's behaviour shifted, and a
     * re-learning window can only pull the means toward current
     * behaviour if the stale members don't outweigh it.
     */
    void decayHistory(std::uint64_t max_count);

    /** Does this signature fall inside the cluster's range? */
    bool matches(InstCount insts) const;

    /**
     * Mix-signature refinement (the paper's future-work direction):
     * additionally require the load/store/branch counts to fall
     * within the same +-range of their per-cluster means. Dimensions
     * whose mean is below a noise floor (32 ops) are exempt.
     */
    bool matchesMix(const Signature &sig) const;

    /** |signature - centroid|, for closest-centroid tie-breaks. */
    double distance(InstCount insts) const;

    /**
     * Predicted performance of an instance matched to this cluster:
     * the arithmetic mean of the recorded members (Sec. 4.5). The
     * instance's own instruction count is reported by the caller;
     * everything else comes from the cluster.
     */
    ServiceMetrics predict() const;

    double centroid() const { return centroid_; }
    double rangeLo() const { return centroid_ * (1.0 - rangeFrac); }
    double rangeHi() const { return centroid_ * (1.0 + rangeFrac); }
    std::uint64_t count() const { return cycles_.count(); }

    /** Per-metric member statistics (CV analyses, Fig. 6). */
    const RunningStats &cyclesStats() const { return cycles_; }
    const RunningStats &ipcStats() const { return ipc_; }
    const RunningStats &instsStats() const { return insts_; }

  private:
    double rangeFrac;
    double emaAlpha;
    double centroid_ = 0.0;

    /** Recency-weighted prediction state (used when emaAlpha > 0).
     *  Order: cycles, l1iAcc, l1iMiss, l1dAcc, l1dMiss, l2Acc,
     *  l2Miss. */
    double ema[7] = {0, 0, 0, 0, 0, 0, 0};

    RunningStats insts_;
    RunningStats cycles_;
    RunningStats ipc_;
    RunningStats loads_;
    RunningStats stores_;
    RunningStats branches_;
    RunningStats l1iAcc;
    RunningStats l1iMiss;
    RunningStats l1dAcc;
    RunningStats l1dMiss;
    RunningStats l2Acc;
    RunningStats l2Miss;
};

} // namespace osp

#endif // OSP_CORE_SCALED_CLUSTER_HH
