/**
 * @file
 * The Performance Lookup Table (Sec. 4.3).
 *
 * One PLT per OS service type. Regular entries are scaled clusters
 * with performance statistics, filled during learning periods.
 * Outlier-cluster entries (Sec. 4.4) are signature-only: they track
 * emulated invocations whose signature matched no regular cluster,
 * carrying a match counter and the list of estimated probabilities
 * of occurrence (EPOs) the Statistical re-learning strategy tests.
 */

#ifndef OSP_CORE_PLT_HH
#define OSP_CORE_PLT_HH

#include <cstdint>
#include <vector>

#include "scaled_cluster.hh"

namespace osp
{

/** A signature-only outlier cluster entry (Sec. 4.4). */
struct OutlierEntry
{
    /** Running-mean signature centroid. */
    double centroid = 0.0;
    /** Members seen so far. */
    std::uint64_t matchCount = 0;
    /** Per-service invocation indices at which members occurred
     *  (for moving-window EPO computation). */
    std::vector<std::uint64_t> occurredAt;
    /** Estimated probabilities of occurrence collected so far. */
    std::vector<double> epos;

    bool
    matches(InstCount insts, double range_frac) const
    {
        auto x = static_cast<double>(insts);
        return x >= centroid * (1.0 - range_frac) &&
               x <= centroid * (1.0 + range_frac);
    }
};

/** See file comment. */
class PerfLookupTable
{
  public:
    /** @param range_frac scaled-cluster half-range
     *  @param ema_alpha  recency weight for cluster predictions
     *                    (see ScaledCluster; 0 = paper behaviour)
     *  @param use_mix    cluster membership additionally requires
     *                    the instruction mix to match (the paper's
     *                    future-work signature refinement) */
    explicit PerfLookupTable(double range_frac = 0.05,
                             double ema_alpha = 0.0,
                             bool use_mix = false);

    /** Record one fully-simulated invocation: add to the matching
     *  cluster or create a new one. Returns true if a new cluster
     *  was created. */
    bool record(const ServiceMetrics &metrics);

    /**
     * The best regular cluster whose range covers the signature
     * (closest centroid on overlap), or nullptr. With mix matching
     * enabled the cluster's mix ranges must cover the signature's
     * mix as well — unless the signature is count-only
     * (sig.hasMix == false), which always matches on the count
     * alone.
     */
    const ScaledCluster *match(const Signature &sig) const;

    /** Instruction-count-only convenience overload: matches on the
     *  count alone, even when mix matching is enabled. */
    const ScaledCluster *
    match(InstCount insts) const
    {
        return match(Signature::instsOnly(insts));
    }

    /** The regular cluster with the closest centroid regardless of
     *  range (Best-Match fallback), or nullptr if the PLT is
     *  empty. */
    const ScaledCluster *closest(InstCount insts) const;

    /**
     * Register an outlier occurrence: matched against existing
     * outlier entries (creating one if necessary), appending the
     * invocation index. Returns the entry.
     */
    OutlierEntry &recordOutlier(InstCount insts,
                                std::uint64_t invocation_index);

    /** Discard all outlier entries (done when re-learning fires). */
    void clearOutliers() { outliers_.clear(); }

    /** Clamp one cluster's history weight (see
     *  ScaledCluster::decayHistory); out-of-range indices are
     *  ignored. */
    void
    decayCluster(std::size_t index, std::uint64_t max_count)
    {
        if (index < clusters.size())
            clusters[index].decayHistory(max_count);
    }

    std::size_t numClusters() const { return clusters.size(); }
    std::size_t numOutlierEntries() const { return outliers_.size(); }

    const std::vector<ScaledCluster> &allClusters() const
    {
        return clusters;
    }

    const std::vector<OutlierEntry> &allOutliers() const
    {
        return outliers_;
    }

    double rangeFrac() const { return rangeFrac_; }

    /** Serializable summaries of every regular cluster. */
    std::vector<ClusterSnapshot> snapshotAll() const;

    /** Rebuild the table from snapshots (replaces all clusters and
     *  drops outlier entries). */
    void restore(const std::vector<ClusterSnapshot> &snapshots);

  private:
    double rangeFrac_;
    double emaAlpha_;
    bool useMix_;
    std::vector<ScaledCluster> clusters;
    std::vector<OutlierEntry> outliers_;
};

} // namespace osp

#endif // OSP_CORE_PLT_HH
