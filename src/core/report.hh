/**
 * @file
 * Experiment bookkeeping: error metrics, the Eq. 10 speedup
 * estimate, and offline characterization of recorded OS-service
 * intervals (the Sec. 3 methodology, used by the Figs. 3-6
 * benches).
 */

#ifndef OSP_CORE_REPORT_HH
#define OSP_CORE_REPORT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "plt.hh"
#include "service_predictor.hh"
#include "sim/machine.hh"
#include "util/json.hh"

namespace osp
{

/** |measured - reference| / reference (0 when reference is 0). */
double absError(double measured, double reference);

/**
 * The paper's Eq. 10 simulation-speedup estimate.
 *
 * @param total_insts     N: all instructions in the run
 * @param predicted_insts X: instructions fast-forwarded in
 *                        emulation during prediction periods
 * @param slowdown        detailed-over-emulation slowdown ratio
 *                        (the paper measures 133x for Simics
 *                        ooo-cache vs inorder-nocache)
 */
double estimatedSpeedup(InstCount total_insts,
                        InstCount predicted_insts,
                        double slowdown = 133.0);

/** Eq. 10 applied to a finished accelerated run. */
double estimatedSpeedup(const RunTotals &totals,
                        double slowdown = 133.0);

/**
 * Offline characterization of one service type from a recorded
 * interval log: the per-service mean/stddev (Fig. 3), and the
 * clustered-vs-unclustered coefficient of variation (Fig. 6)
 * computed with the same scaled-cluster rule the predictor uses.
 */
struct ServiceCharacterization
{
    ServiceType type = ServiceType::SysRead;
    std::uint64_t invocations = 0;
    RunningStats cycles;
    RunningStats ipc;
    RunningStats insts;
    /** Unclustered CV (the whole service as one cluster). */
    double cvCycles = 0.0;
    double cvIpc = 0.0;
    /** Occurrence-weighted mean of per-cluster CVs. */
    double clusteredCvCycles = 0.0;
    double clusteredCvIpc = 0.0;
    std::size_t numClusters = 0;
};

/**
 * Characterize every service present in an interval log.
 *
 * @param intervals  the Machine's recorded intervals
 * @param range_frac scaled-cluster half-range (paper: 0.05)
 * @param skip_first per-service invocations to exclude, mirroring
 *                   the predictor's delayed learning start: the
 *                   cold-start transient is not behaviour the
 *                   clusters are meant to describe (Sec. 4.4)
 * @return one entry per service type that occurred, ordered by type
 */
std::vector<ServiceCharacterization>
characterizeServices(const std::vector<IntervalRecord> &intervals,
                     double range_frac = 0.05,
                     std::uint64_t skip_first = 0);

/**
 * Occurrence-weighted averages of (unclustered, clustered) CVs over
 * all services — the per-benchmark bars of Fig. 6.
 */
struct CvSummary
{
    double cvCycles = 0.0;
    double clusteredCvCycles = 0.0;
    double cvIpc = 0.0;
    double clusteredCvIpc = 0.0;
};

CvSummary
summarizeCv(const std::vector<ServiceCharacterization> &services);

/**
 * Machine-readable report emission (the sweep harness's results
 * schema, "ospredict-sweep-v1"). Object member order is fixed, so
 * documents built from equal inputs are byte-identical — the
 * property the parallel runner's thread-count-invariance contract
 * (and CI artifact diffing) rests on.
 */
JsonValue toJson(const HierarchyCounts &mem);

/** Per-service slice of a run: invocation/simulated/predicted
 *  counts, instructions, cycles, and the coverage they imply. Only
 *  services that occurred are emitted. */
JsonValue perServiceJson(const RunTotals &totals);

/** Whole-run totals, including derived metrics (IPC, coverage,
 *  OS-instruction fraction) and the per-service breakdown. */
JsonValue toJson(const RunTotals &totals);

/** Aggregate predictor statistics. */
JsonValue toJson(const ServicePredictor::Stats &stats);

/**
 * One run's accuracy-ledger snapshot (the per-cell "ledger" block
 * of the "ospredict-accuracy-v1" section): run totals, the pooled
 * audit-error statistics with their 95% CI and the extrapolated
 * end-to-end error estimate, then one entry per (service, cluster)
 * with the signed error distribution, drift flag, and error-budget
 * contribution. Service indices are emitted as service names;
 * fields whose value would be undefined (CI with fewer than two
 * samples, estimate without run totals) are omitted rather than
 * emitted as NaN, keeping the document strictly-parsable and
 * byte-deterministic.
 */
JsonValue toJson(const obs::AccuracySnapshot &snapshot);

} // namespace osp

#endif // OSP_CORE_REPORT_HH
