#include "predictor_backend.hh"

#include <algorithm>
#include <cmath>

#include "service_predictor.hh"
#include "util/logging.hh"

namespace osp
{

const char *
predictorBackendName(PredictorBackendKind kind)
{
    switch (kind) {
      case PredictorBackendKind::Plt:
        return "plt";
      case PredictorBackendKind::Learned:
        return "learned";
    }
    osp_panic("predictorBackendName: bad kind");
}

bool
predictorBackendFromName(std::string_view name,
                         PredictorBackendKind &out)
{
    if (name == "plt") {
        out = PredictorBackendKind::Plt;
        return true;
    }
    if (name == "learned") {
        out = PredictorBackendKind::Learned;
        return true;
    }
    return false;
}

std::unique_ptr<PredictorBackend>
makePredictorBackend(const PredictorParams &params)
{
    switch (params.backend) {
      case PredictorBackendKind::Plt:
        return std::make_unique<PltBackend>(
            params.clusterRange, params.emaAlpha,
            params.useMixSignature, params.relearn);
      case PredictorBackendKind::Learned:
        return std::make_unique<LearnedBackend>(params.learned);
    }
    osp_panic("makePredictorBackend: bad kind");
}

// ---------------------------------------------------------------
// PltBackend

PltBackend::PltBackend(double range_frac, double ema_alpha,
                       bool use_mix, const RelearnParams &relearn)
    : plt_(range_frac, ema_alpha, use_mix),
      policy_(RelearnPolicy::make(relearn))
{
}

BackendLookup
PltBackend::lookup(const Signature &sig) const
{
    BackendLookup out;
    const ScaledCluster *cluster = plt_.match(sig);
    out.matched = (cluster != nullptr);
    if (!cluster)
        cluster = plt_.closest(sig.insts);
    if (!cluster)
        return out;
    // The index is resolved here, against the table as it stands at
    // lookup time, and returned by value: callers hold an index that
    // stays meaningful for the ledger even if a later drift reset or
    // re-learning window grows (and reallocates) the cluster vector.
    out.unit = static_cast<std::uint32_t>(
        cluster - plt_.allClusters().data());
    out.hasSource = true;
    out.metrics = cluster->predict();
    out.cyclesSpread = cluster->cyclesStats().stddev();
    return out;
}

// ---------------------------------------------------------------
// LearnedBackend

LearnedBackend::LearnedBackend(const LearnedBackendParams &params)
    : params_(params)
{
    if (params_.bucketsPerOctave == 0)
        osp_fatal("LearnedBackend: bucketsPerOctave must be > 0");
    if (params_.cpiMin <= 0.0 || params_.cpiMax <= params_.cpiMin)
        osp_fatal("LearnedBackend: bad CPI clamp range");
}

std::uint32_t
LearnedBackend::bucketOf(double insts) const
{
    if (insts < 1.0)
        return 0;
    double b = std::log2(insts + 1.0) *
               static_cast<double>(params_.bucketsPerOctave);
    // 64 bits of instruction count at quarter-octave resolution
    // stays far below this ceiling; the clamp only guards NaN/inf.
    double lim = 1 << 30;
    return static_cast<std::uint32_t>(
        std::clamp(std::floor(b), 0.0, lim));
}

void
LearnedBackend::featuresFor(const Signature &sig,
                            const Bucket *bucket,
                            double (&x)[numFeatures]) const
{
    double insts = static_cast<double>(sig.insts);
    auto ratio = [&](double num) {
        if (insts <= 0.0)
            return 0.0;
        return std::clamp(num / insts, 0.0, 1.0);
    };
    x[0] = 1.0;
    x[1] = std::log2(insts + 1.0) / 32.0;
    if (sig.hasMix) {
        x[2] = ratio(static_cast<double>(sig.loads));
        x[3] = ratio(static_cast<double>(sig.stores));
        x[4] = ratio(static_cast<double>(sig.branches));
    } else if (bucket && bucket->loads.count() > 0) {
        // Count-only lookup: substitute the bucket's historical mix.
        double m = bucket->insts.mean();
        auto bratio = [&](const RunningStats &s) {
            return m > 0.0 ? std::clamp(s.mean() / m, 0.0, 1.0)
                           : 0.0;
        };
        x[2] = bratio(bucket->loads);
        x[3] = bratio(bucket->stores);
        x[4] = bratio(bucket->branches);
    } else {
        x[2] = x[3] = x[4] = 0.0;
    }
    x[5] = emaInit_ ? emaCpi_ / 16.0 : 0.0;
}

double
LearnedBackend::modelCpi(const double (&x)[numFeatures]) const
{
    double y = 0.0;
    for (int i = 0; i < numFeatures; ++i)
        y += w_[i] * x[i];
    return std::clamp(y, params_.cpiMin, params_.cpiMax);
}

bool
LearnedBackend::learn(const ServiceMetrics &m)
{
    Bucket &b =
        buckets_[bucketOf(static_cast<double>(m.insts))];
    bool fresh = (b.cycles.count() == 0);
    b.insts.add(static_cast<double>(m.insts));
    b.cycles.add(static_cast<double>(m.cycles));
    b.ipc.add(m.ipc());
    b.loads.add(static_cast<double>(m.loads));
    b.stores.add(static_cast<double>(m.stores));
    b.branches.add(static_cast<double>(m.branches));
    b.l1iAcc.add(static_cast<double>(m.mem.l1iAccesses));
    b.l1iMiss.add(static_cast<double>(m.mem.l1iMisses));
    b.l1dAcc.add(static_cast<double>(m.mem.l1dAccesses));
    b.l1dMiss.add(static_cast<double>(m.mem.l1dMisses));
    b.l2Acc.add(static_cast<double>(m.mem.l2Accesses));
    b.l2Miss.add(static_cast<double>(m.mem.l2Misses));

    if (m.insts > 0) {
        // One SGD step toward the observed CPI. Features are
        // evaluated against the pre-update recent-history EMA, the
        // same value a prediction issued just before this sample
        // would have seen.
        double y = static_cast<double>(m.cycles) /
                   static_cast<double>(m.insts);
        double x[numFeatures];
        featuresFor(m.signature(), &b, x);
        double err = 0.0;
        for (int i = 0; i < numFeatures; ++i)
            err += w_[i] * x[i];
        err -= y;
        // Clipped gradient: one wild sample (an interrupt storm
        // inside a service) must not launch the weights to a region
        // the clamp then hides for thousands of steps.
        err = std::clamp(err, -64.0, 64.0);
        double rate =
            params_.learningRate /
            (1.0 + static_cast<double>(sgdSteps_) /
                       params_.rateDecay);
        for (int i = 0; i < numFeatures; ++i)
            w_[i] -= rate * err * x[i];
        ++sgdSteps_;
        emaCpi_ = emaInit_
                      ? emaCpi_ + params_.historyAlpha * (y - emaCpi_)
                      : y;
        emaInit_ = true;
    }
    return fresh;
}

BackendLookup
LearnedBackend::lookup(const Signature &sig) const
{
    BackendLookup out;
    if (buckets_.empty())
        return out;
    std::uint32_t want =
        bucketOf(static_cast<double>(sig.insts));
    auto it = buckets_.find(want);
    out.matched = (it != buckets_.end());
    if (!out.matched) {
        // Closest-bucket fallback (the Best-Match analogue). Ordered
        // map iteration makes the tie-break (lower id) and therefore
        // the whole prediction deterministic.
        std::uint64_t best = ~std::uint64_t{0};
        for (auto cand = buckets_.begin(); cand != buckets_.end();
             ++cand) {
            std::uint64_t d = cand->first > want
                                  ? cand->first - want
                                  : want - cand->first;
            if (d < best) {
                best = d;
                it = cand;
            }
        }
    }
    const Bucket &b = it->second;
    out.unit = it->first;
    out.hasSource = true;
    out.cyclesSpread = b.cycles.stddev();

    double insts = static_cast<double>(sig.insts);
    double x[numFeatures];
    featuresFor(sig, &b, x);
    double cpi = modelCpi(x);
    auto round = [](double v) {
        return v <= 0.0 ? std::uint64_t{0}
                        : static_cast<std::uint64_t>(v + 0.5);
    };
    out.metrics.insts = round(b.insts.mean());
    out.metrics.cycles = round(cpi * insts);
    // Memory counters: the bucket's per-invocation means, scaled to
    // this signature's instruction count.
    double scale = b.insts.mean() > 0.0 && insts > 0.0
                       ? insts / b.insts.mean()
                       : 1.0;
    out.metrics.mem.l1iAccesses = round(b.l1iAcc.mean() * scale);
    out.metrics.mem.l1iMisses = round(b.l1iMiss.mean() * scale);
    out.metrics.mem.l1dAccesses = round(b.l1dAcc.mean() * scale);
    out.metrics.mem.l1dMisses = round(b.l1dMiss.mean() * scale);
    out.metrics.mem.l2Accesses = round(b.l2Acc.mean() * scale);
    out.metrics.mem.l2Misses = round(b.l2Miss.mean() * scale);
    return out;
}

bool
LearnedBackend::onOutlier(InstCount insts, std::uint64_t)
{
    std::uint64_t &n =
        missCounts_[bucketOf(static_cast<double>(insts))];
    ++n;
    return n >= params_.outlierThreshold;
}

void
LearnedBackend::decayUnit(std::uint32_t unit,
                          std::uint64_t max_count)
{
    auto it = buckets_.find(unit);
    if (it == buckets_.end())
        return;
    Bucket &b = it->second;
    for (RunningStats *s :
         {&b.insts, &b.cycles, &b.ipc, &b.loads, &b.stores,
          &b.branches, &b.l1iAcc, &b.l1iMiss, &b.l1dAcc,
          &b.l1dMiss, &b.l2Acc, &b.l2Miss})
        s->clampWeight(max_count);
    // Audits just disproved the model too: raising the step size
    // back up (by rewinding the decay schedule) lets the fresh
    // window actually move the weights.
    sgdSteps_ = std::min(sgdSteps_, max_count);
}

std::vector<ClusterSnapshot>
LearnedBackend::snapshot() const
{
    // Row 0 is the model row, flagged by count == 0 (real buckets
    // always hold at least one sample): the 11 double fields carry
    // the weight vector, the recent-history EMA and the SGD step
    // counter, so the whole backend round-trips through the
    // unchanged ospredict-profile v1 format.
    std::vector<ClusterSnapshot> out;
    out.reserve(buckets_.size() + 1);
    ClusterSnapshot model;
    model.count = 0;
    model.instMean = w_[0];
    model.instM2 = w_[1];
    model.cyclesMean = w_[2];
    model.cyclesM2 = w_[3];
    model.ipcMean = w_[4];
    model.l1iAccMean = w_[5];
    model.l1iMissMean = emaCpi_;
    model.l1dAccMean = static_cast<double>(sgdSteps_);
    model.l1dMissMean = emaInit_ ? 1.0 : 0.0;
    out.push_back(model);
    for (const auto &[id, b] : buckets_) {
        ClusterSnapshot s;
        s.count = b.cycles.count();
        s.instMean = b.insts.mean();
        s.instM2 =
            b.insts.variance() * static_cast<double>(s.count);
        s.cyclesMean = b.cycles.mean();
        s.cyclesM2 =
            b.cycles.variance() * static_cast<double>(s.count);
        s.ipcMean = b.ipc.mean();
        s.l1iAccMean = b.l1iAcc.mean();
        s.l1iMissMean = b.l1iMiss.mean();
        s.l1dAccMean = b.l1dAcc.mean();
        s.l1dMissMean = b.l1dMiss.mean();
        s.l2AccMean = b.l2Acc.mean();
        s.l2MissMean = b.l2Miss.mean();
        out.push_back(s);
    }
    return out;
}

void
LearnedBackend::restore(
    const std::vector<ClusterSnapshot> &snapshots)
{
    buckets_.clear();
    missCounts_.clear();
    for (int i = 0; i < numFeatures; ++i)
        w_[i] = 0.0;
    sgdSteps_ = 0;
    emaCpi_ = 0.0;
    emaInit_ = false;
    for (const auto &s : snapshots) {
        if (s.count == 0) {
            w_[0] = s.instMean;
            w_[1] = s.instM2;
            w_[2] = s.cyclesMean;
            w_[3] = s.cyclesM2;
            w_[4] = s.ipcMean;
            w_[5] = s.l1iAccMean;
            emaCpi_ = s.l1iMissMean;
            sgdSteps_ = s.l1dAccMean <= 0.0
                            ? 0
                            : static_cast<std::uint64_t>(
                                  s.l1dAccMean + 0.5);
            emaInit_ = s.l1dMissMean > 0.5;
            continue;
        }
        // Bucket membership is an interval in instruction count, so
        // the member mean maps back into the bucket it came from. A
        // plain PLT profile (no model row) restores as buckets with
        // a cold model — learning then resumes from the buckets.
        std::uint32_t id = bucketOf(s.instMean);
        Bucket fresh;
        Bucket &b =
            buckets_.emplace(id, fresh).first->second;
        auto mk = [&](double mean, double m2 = 0.0) {
            return RunningStats::fromMoments(s.count, mean, m2,
                                             mean, mean);
        };
        Bucket add;
        add.insts = mk(s.instMean, s.instM2);
        add.cycles = mk(s.cyclesMean, s.cyclesM2);
        add.ipc = mk(s.ipcMean);
        add.l1iAcc = mk(s.l1iAccMean);
        add.l1iMiss = mk(s.l1iMissMean);
        add.l1dAcc = mk(s.l1dAccMean);
        add.l1dMiss = mk(s.l1dMissMean);
        add.l2Acc = mk(s.l2AccMean);
        add.l2Miss = mk(s.l2MissMean);
        // Mix statistics are not serialized (as with the PLT);
        // count-only lookups fall back to zero mix features until
        // new samples arrive.
        b.insts.merge(add.insts);
        b.cycles.merge(add.cycles);
        b.ipc.merge(add.ipc);
        b.l1iAcc.merge(add.l1iAcc);
        b.l1iMiss.merge(add.l1iMiss);
        b.l1dAcc.merge(add.l1dAcc);
        b.l1dMiss.merge(add.l1dMiss);
        b.l2Acc.merge(add.l2Acc);
        b.l2Miss.merge(add.l2Miss);
    }
}

} // namespace osp
