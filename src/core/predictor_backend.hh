/**
 * @file
 * Pluggable learning/prediction backends for ServicePredictor.
 *
 * The paper's PLT clustering (Sec. 4.3-4.5) is one point in a design
 * space that related work fills with learned models. The lifecycle
 * machinery around it — warm-up, learning windows, audit sampling,
 * drift resets — is strategy-independent, so ServicePredictor keeps
 * the state machine and delegates the actual learning and lookup to
 * a PredictorBackend:
 *
 *  - PltBackend     the paper's scaled-cluster lookup table plus its
 *                   outlier-entry re-learning strategies (default);
 *  - LearnedBackend an online linear model over a feature vector of
 *                   (signature, per-class instruction mix,
 *                   recent-history CPI), trained incrementally from
 *                   the same detailed/audit samples. Deterministic
 *                   and thread-count-invariant: all state is
 *                   per-service, updates happen in invocation order,
 *                   and nothing draws randomness.
 *
 * Both backends snapshot/restore through the same ClusterSnapshot
 * rows the "ospredict-profile v1" format serializes, so persistent
 * warm starts (PltArchive, abl5) work regardless of backend.
 */

#ifndef OSP_CORE_PREDICTOR_BACKEND_HH
#define OSP_CORE_PREDICTOR_BACKEND_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "obs/accuracy.hh"
#include "plt.hh"
#include "relearn.hh"

namespace osp
{

/** Backend selector (PredictorParams::backend). */
enum class PredictorBackendKind
{
    Plt,
    Learned,
};

/** Display name ("plt", "learned"). */
const char *predictorBackendName(PredictorBackendKind kind);

/** Parse a display name; returns false on an unknown name. */
bool predictorBackendFromName(std::string_view name,
                              PredictorBackendKind &out);

/** Hyperparameters of the online learned backend. */
struct LearnedBackendParams
{
    /** Base SGD step size for the linear CPI model. */
    double learningRate = 0.05;
    /** Step-size decay scale: step_n = rate / (1 + n/rateDecay). */
    double rateDecay = 256.0;
    /** EMA weight of the recent-history CPI feature. */
    double historyAlpha = 0.1;
    /** Clamp range for predicted cycles-per-instruction; keeps a
     *  cold or perturbed model from emitting absurd cycle counts. */
    double cpiMin = 0.05;
    double cpiMax = 1024.0;
    /** Occurrences of the same unseen signature bucket before the
     *  backend requests a re-learning window (Delayed-style). */
    std::uint64_t outlierThreshold = 4;
    /** Signature-bucket resolution: buckets per factor-of-two of
     *  instruction count (4 = quarter-octave, ~19% wide). */
    std::uint32_t bucketsPerOctave = 4;
};

/**
 * Result of one backend lookup. `unit` identifies the backend's
 * internal unit (PLT cluster index / learned signature bucket) that
 * produced the metrics; it is resolved *inside* the lookup, before
 * any subsequent table mutation can invalidate it, and is what the
 * accuracy ledger books predictions and audit errors under.
 */
struct BackendLookup
{
    /** Predicted performance (meaningful only when hasSource). */
    ServiceMetrics metrics;
    /** Producing unit, or obs::accuracyNoCluster. */
    std::uint32_t unit = obs::accuracyNoCluster;
    /** Signature matched a known unit (false = outlier). */
    bool matched = false;
    /** Some unit produced metrics (closest-unit fallback counts). */
    bool hasSource = false;
    /** Std deviation of the source unit's observed cycles, for the
     *  variance-aware audit bound. */
    double cyclesSpread = 0.0;
};

/** See file comment. */
class PredictorBackend
{
  public:
    virtual ~PredictorBackend() = default;

    virtual const char *name() const = 0;
    virtual PredictorBackendKind kind() const = 0;

    /** Fold one fully-simulated sample in. Returns true when the
     *  sample created a new unit (cluster/bucket). */
    virtual bool learn(const ServiceMetrics &metrics) = 0;

    /** Predict from a signature (see BackendLookup). Const: a
     *  lookup never changes future predictions. */
    virtual BackendLookup lookup(const Signature &sig) const = 0;

    /**
     * Register one outlier occurrence (a lookup that matched no
     * unit). Returns true to request a re-learning window; the
     * caller then clears outlier state via clearOutlierState().
     */
    virtual bool onOutlier(InstCount insts,
                           std::uint64_t invocation) = 0;

    /** Drop accumulated outlier evidence (re-learning fired). */
    virtual void clearOutlierState() = 0;

    /** Clamp one unit's history weight to @p max_count samples
     *  (drift reset); unknown units are ignored. */
    virtual void decayUnit(std::uint32_t unit,
                           std::uint64_t max_count) = 0;

    virtual std::size_t numUnits() const = 0;
    virtual std::size_t numOutlierEntries() const = 0;

    /** Serialize the learned state as ClusterSnapshot rows (the
     *  ospredict-profile v1 payload). */
    virtual std::vector<ClusterSnapshot> snapshot() const = 0;

    /** Rebuild from snapshot rows, replacing all learned state. */
    virtual void
    restore(const std::vector<ClusterSnapshot> &snapshots) = 0;

    /** The underlying PLT, when this backend has one (introspection
     *  for reports/benches; nullptr otherwise). */
    virtual const PerfLookupTable *asPlt() const { return nullptr; }
};

/** The paper's PLT clustering + re-learning strategies. */
class PltBackend final : public PredictorBackend
{
  public:
    PltBackend(double range_frac, double ema_alpha, bool use_mix,
               const RelearnParams &relearn);

    const char *name() const override { return "plt"; }
    PredictorBackendKind
    kind() const override
    {
        return PredictorBackendKind::Plt;
    }

    bool
    learn(const ServiceMetrics &metrics) override
    {
        return plt_.record(metrics);
    }

    BackendLookup lookup(const Signature &sig) const override;

    bool
    onOutlier(InstCount insts, std::uint64_t invocation) override
    {
        return policy_->onOutlier(plt_, insts, invocation);
    }

    void clearOutlierState() override { plt_.clearOutliers(); }

    void
    decayUnit(std::uint32_t unit, std::uint64_t max_count) override
    {
        plt_.decayCluster(unit, max_count);
    }

    std::size_t numUnits() const override
    {
        return plt_.numClusters();
    }
    std::size_t numOutlierEntries() const override
    {
        return plt_.numOutlierEntries();
    }

    std::vector<ClusterSnapshot> snapshot() const override
    {
        return plt_.snapshotAll();
    }
    void
    restore(const std::vector<ClusterSnapshot> &snapshots) override
    {
        plt_.restore(snapshots);
    }

    const PerfLookupTable *asPlt() const override { return &plt_; }

  private:
    PerfLookupTable plt_;
    std::unique_ptr<RelearnPolicy> policy_;
};

/**
 * Online learned backend: signature buckets + a linear CPI model.
 *
 * Units are logarithmic instruction-count buckets
 * (bucketsPerOctave per factor of two). Each bucket accumulates the
 * same per-metric running statistics a scaled cluster does; cycle
 * prediction, however, comes from a small linear model over
 *
 *   x = [1, log2(insts), loads/insts, stores/insts,
 *        branches/insts, recent-CPI EMA]
 *
 * trained by decaying-rate SGD on every detailed/audit sample
 * toward the observed CPI, then clamped to [cpiMin, cpiMax] and
 * scaled by the signature's own instruction count. Memory-hierarchy
 * counters are predicted from the bucket's per-invocation means,
 * scaled to the signature. A lookup in an unseen bucket is an
 * outlier; outlierThreshold occurrences of the same unseen bucket
 * request a re-learning window.
 */
class LearnedBackend final : public PredictorBackend
{
  public:
    explicit LearnedBackend(const LearnedBackendParams &params);

    const char *name() const override { return "learned"; }
    PredictorBackendKind
    kind() const override
    {
        return PredictorBackendKind::Learned;
    }

    bool learn(const ServiceMetrics &metrics) override;
    BackendLookup lookup(const Signature &sig) const override;
    bool onOutlier(InstCount insts,
                   std::uint64_t invocation) override;
    void clearOutlierState() override { missCounts_.clear(); }
    void decayUnit(std::uint32_t unit,
                   std::uint64_t max_count) override;

    std::size_t numUnits() const override
    {
        return buckets_.size();
    }
    std::size_t numOutlierEntries() const override
    {
        return missCounts_.size();
    }

    std::vector<ClusterSnapshot> snapshot() const override;
    void
    restore(const std::vector<ClusterSnapshot> &snapshots) override;

    /** Model introspection (tests). */
    std::uint64_t modelSteps() const { return sgdSteps_; }
    double recentCpi() const { return emaCpi_; }

    /** The signature bucket an instruction count falls into. */
    std::uint32_t bucketOf(double insts) const;

  private:
    static constexpr int numFeatures = 6;

    struct Bucket
    {
        RunningStats insts, cycles, ipc;
        RunningStats loads, stores, branches;
        RunningStats l1iAcc, l1iMiss, l1dAcc, l1dMiss, l2Acc,
            l2Miss;
    };

    void featuresFor(const Signature &sig, const Bucket *bucket,
                     double (&x)[numFeatures]) const;
    double modelCpi(const double (&x)[numFeatures]) const;

    LearnedBackendParams params_;
    /** Ordered: iteration (closest-bucket fallback, snapshots) must
     *  be deterministic. */
    std::map<std::uint32_t, Bucket> buckets_;
    double w_[numFeatures] = {0, 0, 0, 0, 0, 0};
    std::uint64_t sgdSteps_ = 0;
    double emaCpi_ = 0.0;
    bool emaInit_ = false;
    /** Unseen-bucket outlier occurrence counts (Delayed-style). */
    std::map<std::uint32_t, std::uint64_t> missCounts_;
};

} // namespace osp

#endif // OSP_CORE_PREDICTOR_BACKEND_HH
