/**
 * @file
 * The per-invocation performance record the predictor learns and
 * predicts: instruction count (the signature), cycles, and
 * memory-hierarchy counters (Sec. 4.3's PLT entry payload).
 */

#ifndef OSP_CORE_PERF_RECORD_HH
#define OSP_CORE_PERF_RECORD_HH

#include "mem/hierarchy.hh"
#include "util/types.hh"

namespace osp
{

/**
 * An invocation's behaviour signature, obtainable in pure emulation
 * (no timing models): the dynamic instruction count — the paper's
 * signature — optionally refined by the instruction mix (the
 * paper's suggested future work: two paths with equal counts but
 * different load/store/branch composition are distinct behaviour
 * points).
 */
struct Signature
{
    InstCount insts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    /**
     * Whether the mix fields carry real measurements. An
     * instruction-count-only signature (hasMix == false) is matched
     * on the count alone even when mix matching is enabled —
     * all-zero mix counts are indistinguishable from "not
     * collected", and treating them as measurements would turn
     * every count-only lookup into a spurious outlier.
     */
    bool hasMix = true;

    /** Count-only constructor helper. */
    static Signature
    instsOnly(InstCount insts)
    {
        Signature s;
        s.insts = insts;
        s.hasMix = false;
        return s;
    }
};

/** One OS-service invocation's measured (or predicted) performance. */
struct ServiceMetrics
{
    InstCount insts = 0;
    Cycles cycles = 0;
    HierarchyCounts mem;
    /** Instruction mix (mix-signature support). */
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;

    Signature
    signature() const
    {
        return Signature{insts, loads, stores, branches};
    }

    double
    ipc() const
    {
        return cycles ? static_cast<double>(insts) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

} // namespace osp

#endif // OSP_CORE_PERF_RECORD_HH
