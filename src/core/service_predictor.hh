/**
 * @file
 * The per-service learning/prediction state machine (Sec. 4.3-4.5).
 *
 * Lifecycle of one OS service type:
 *
 *   Warmup      the first few invocations (5 in the paper) are fully
 *               simulated but NOT recorded: initialization work and
 *               cold caches would poison the clusters;
 *   Learning    the next N invocations (N from the binomial
 *               learning-window analysis, Fig. 7; 100 at pmin=3%,
 *               DoC=95%) are fully simulated and recorded into the
 *               PLT;
 *   Predicting  invocations run in fast emulation; the signature
 *               (instruction count) picks a PLT cluster whose means
 *               become the prediction. A signature matching no
 *               cluster is an outlier: predicted from the closest
 *               cluster, and fed to the re-learning strategy, which
 *               may switch the service back to Learning for another
 *               window.
 */

#ifndef OSP_CORE_SERVICE_PREDICTOR_HH
#define OSP_CORE_SERVICE_PREDICTOR_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/telemetry.hh"
#include "plt.hh"
#include "predictor_backend.hh"
#include "relearn.hh"

namespace osp
{

/** Predictor tunables; defaults reproduce the paper's setup. */
struct PredictorParams
{
    /** Degree of confidence for the learning-window derivation. */
    double doc = 0.95;
    /** Minimum probability of occurrence worth capturing. */
    double pMin = 0.03;
    /**
     * Initial (and re-)learning window; 0 derives it from
     * (pMin, doc) via the binomial analysis. The paper rounds the
     * 95%/3% answer to 100.
     */
    std::uint64_t learningWindow = 0;
    /**
     * Minimum fully-simulated, unrecorded invocations before
     * learning starts. The paper uses 5 (raising it to 25 for
     * find-od's L2); our substrate's emulated fast-forward leaves
     * every cache cold and the synthetic kernel's per-service
     * working sets are hundreds of KB, so the thermal transient is
     * longer — 100 is the calibrated default (see the abl2 bench
     * for the sweep).
     */
    std::uint64_t warmupInvocations = 100;
    /**
     * Adaptive delayed start (extension): after the minimum
     * warm-up, keep delaying until the service's cycles-per-
     * instruction stabilizes — the thermal transient's length
     * depends on cache size (a 4MB L2 warms far slower than 1MB),
     * so a fixed delay either wastes coverage or records cold
     * behaviour. Disabled by setting stabilityWindow to 0.
     */
    std::uint64_t maxWarmupInvocations = 800;
    /** Consecutive-invocation window for the stability test. */
    std::uint64_t stabilityWindow = 25;
    /** Relative CPI-mean drift below which warm-up ends. */
    double stabilityTolerance = 0.02;
    /**
     * Audit sampling (extension): every auditEvery-th prediction is
     * instead simulated in detail and compared with what the PLT
     * would have predicted. Behaviour can drift without the
     * signature changing (e.g. rising memory-system pressure), which
     * produces no outliers and so never triggers the paper's
     * re-learning; audits catch it at a ~1/auditEvery coverage
     * cost. 0 disables auditing.
     */
    std::uint64_t auditEvery = 50;
    /** Relative cycle deviation that fails an audit (also gated by
     *  3x the cluster's own stddev; see service_predictor.cc). */
    double auditTolerance = 0.30;
    /**
     * Detailed invocations run — and discarded — immediately
     * before each audit sample. During a prediction period the
     * service's cache working set decays (emulation does not touch
     * the real caches beyond pollution injection), so an isolated
     * detailed invocation measures cold-cache cycles that neither
     * the clusters (learned from consecutive detailed runs) nor
     * the full-detail oracle ever see: audits would report a large
     * phantom error and trigger spurious drift resets. Re-warming
     * with one sacrificial detailed invocation restores thermal
     * parity at a 1/auditEvery coverage cost. 0 compares cold
     * (the pre-ledger behaviour).
     */
    std::uint64_t auditWarmup = 2;
    /** Consecutive failed audits that invalidate the PLT and
     *  restart learning. */
    std::uint64_t auditTriggerCount = 3;
    /**
     * Statistical drift trigger: once a cluster has this many
     * audit samples, re-enter learning when the Student-t 95%
     * confidence interval on its mean relative audit error lies
     * entirely outside the +-auditMeanTolerance band. The
     * consecutive-failure trigger above only catches deviations
     * exceeding the per-audit bound (which is 3-sigma-wide for
     * noisy clusters); a noisy cluster whose *mean* has drifted
     * passes every individual audit yet accumulates statistically
     * unambiguous bias — exactly what a CI test detects. 0
     * disables the statistical trigger.
     */
    std::uint64_t auditCiMinSamples = 8;
    /**
     * Acceptable sustained per-cluster mean audit error. Much
     * tighter than auditTolerance: a single audit deviating 30%
     * is ordinary noise, but a cluster whose *mean* error is
     * provably beyond 10% contributes bias to every prediction it
     * makes, and only re-learning fixes that.
     */
    double auditMeanTolerance = 0.10;
    /** Scaled-cluster half-range (0.05 in the paper). */
    double clusterRange = 0.05;
    /**
     * Recency weight for cluster predictions: 0 (default, the
     * paper's formulation) predicts all-time means — the right
     * estimator for noisy stationary clusters; >0 predicts an
     * exponentially-weighted moving average (only useful under
     * continuous drift, at a large variance cost).
     */
    double emaAlpha = 0.0;
    /**
     * Instruction-mix signatures (the paper's future work, Sec. 3):
     * cluster membership additionally requires per-class
     * (load/store/branch) counts to match, disambiguating paths
     * with equal instruction counts but different composition.
     */
    bool useMixSignature = false;
    RelearnParams relearn;
    /**
     * Learning/prediction strategy (see predictor_backend.hh):
     * the paper's PLT clustering (default) or the online learned
     * feature-vector model.
     */
    PredictorBackendKind backend = PredictorBackendKind::Plt;
    /** Learned-backend hyperparameters (ignored by plt). */
    LearnedBackendParams learned;
};

/** Build the backend selected by @p params. */
std::unique_ptr<PredictorBackend>
makePredictorBackend(const PredictorParams &params);

/** See file comment. */
class ServicePredictor
{
  public:
    explicit ServicePredictor(const PredictorParams &params);

    /** Should the next invocation be fully simulated? (Pure query;
     *  does not advance audit scheduling.) */
    bool wantsDetail() const { return mode_ != Mode::Predicting; }

    /**
     * Decide how to run the next invocation, advancing the audit
     * schedule: like wantsDetail(), but while predicting, every
     * auditEvery-th call returns true to request an audit sample.
     */
    bool decideDetail();

    /** Record a fully-simulated invocation. */
    void recordDetailed(const ServiceMetrics &metrics);

    /**
     * Predict an emulated invocation from its signature. Never
     * fails: with an empty PLT (cannot happen in normal operation,
     * since learning precedes prediction) a zero prediction is
     * returned.
     *
     * @param signature        signature obtained in emulation
     * @param invocation_index per-service invocation index
     * @param[out] was_outlier set true if no cluster matched
     */
    ServiceMetrics predict(const Signature &signature,
                           std::uint64_t invocation_index,
                           bool *was_outlier = nullptr);

    /** Instruction-count-only convenience overload: matched on the
     *  count alone even under mix signatures (an all-zero mix is
     *  "not collected", not a measurement). */
    ServiceMetrics
    predict(InstCount insts, std::uint64_t invocation_index,
            bool *was_outlier = nullptr)
    {
        return predict(Signature::instsOnly(insts),
                       invocation_index, was_outlier);
    }

    /** Effective learning-window size in use. */
    std::uint64_t learningWindow() const { return window; }

    /**
     * Identity of the backend unit (PLT cluster index / learned
     * signature bucket) that produced the most recent predict().
     * Outlier predictions report the closest unit actually used;
     * obs::accuracyNoCluster when no unit existed at all. The index
     * is resolved inside the backend at lookup time — before any
     * drift reset or re-learning can mutate the table — so this is
     * what ties a prediction (and its audit outcome) back to a
     * named entry in the accuracy ledger's error budget. Note it
     * describes the table as it stood at that lookup: a later
     * restoreTable()/drift reset starts a new index epoch.
     */
    std::uint32_t lastMatchedCluster() const
    {
        return lastMatchedCluster_;
    }

    /** The learning/prediction backend in use. */
    const PredictorBackend &backend() const { return *backend_; }

    /** The underlying PLT (panics unless the plt backend is
     *  selected; reports/benches that inspect clusters). */
    const PerfLookupTable &table() const;

    /** Serializable learned state (profile persistence). */
    std::vector<ClusterSnapshot> snapshotTable() const
    {
        return backend_->snapshot();
    }

    /**
     * Install a previously learned table and jump straight to the
     * prediction phase (cross-run reuse / warm start). All audit
     * scheduling and drift-evidence state is cleared: the restored
     * table starts with a clean slate, so a warm-started run can
     * never inherit a prior table's drift accumulators and
     * spuriously drift-reset. Whether the stale table stays usable
     * is up to the re-learning strategy and audits — see the abl5
     * bench, which uses this to test the paper's claim that offline
     * profiles cannot capture run-to-run variation.
     */
    void restoreTable(const std::vector<ClusterSnapshot> &snapshots);

    /** Lifetime statistics. */
    struct Stats
    {
        std::uint64_t warmupRuns = 0;    //!< unrecorded detailed runs
        std::uint64_t learnedRuns = 0;   //!< recorded detailed runs
        std::uint64_t predictedRuns = 0;
        std::uint64_t outliers = 0;
        std::uint64_t relearnEvents = 0;
        std::uint64_t audits = 0;
        std::uint64_t auditFailures = 0;
        /** Sacrificial cache re-warm runs before audits (discarded,
         *  neither learned nor audited). */
        std::uint64_t auditWarmupRuns = 0;
        std::uint64_t driftResets = 0;
    };

    const Stats &stats() const { return stats_; }

    /**
     * Attach a telemetry sink (obs/). Counters and a cluster-count
     * gauge register under @p component (e.g. "predictor.sys_read");
     * trace events carry @p service_index. Purely observational:
     * attaching never changes a decision or an RNG draw, so
     * instrumented and bare runs stay cycle-identical. Pass nullptr
     * to detach.
     */
    void attachTelemetry(obs::Telemetry *telemetry,
                         const std::string &component,
                         std::uint8_t service_index);

  private:
    enum class Mode
    {
        Warmup,
        Learning,
        Predicting,
    };

    /** True once the warm-up CPI trace has flattened out. */
    bool warmupStable() const;

    /** Record a trace event for this service (no-op unattached). */
    void
    trace(obs::TraceEventKind kind, std::uint64_t a, std::uint64_t b)
    {
        if (telemetry_)
            telemetry_->tracer.record(kind, serviceIndex_, a, b);
    }

    /** Change phase, emitting the transition to telemetry. */
    void enterMode(Mode to);

    /** Sustained drift detected by an audit: re-enter a learning
     *  window (without clearing the table) seeded with @p metrics,
     *  decaying the implicated unit's history weight. */
    void auditDriftReset(const ServiceMetrics &metrics,
                         std::uint32_t cluster_idx);

    /** Fold one detailed sample into the backend, tracking
     *  growth. */
    void recordSample(const ServiceMetrics &metrics);

    PredictorParams params;
    std::uint64_t window;
    std::unique_ptr<PredictorBackend> backend_;

    Mode mode_ = Mode::Warmup;
    std::uint64_t phaseCount = 0;  //!< invocations in current phase
    std::vector<double> warmupCpi;
    std::uint64_t sinceAudit = 0;
    /** Detailed invocations left in the current audit burst (the
     *  auditWarmup re-warm runs plus the audited one). */
    std::uint64_t auditBurstLeft = 0;
    bool auditPending = false;
    /** The invocation being recorded is an audit re-warm run. */
    bool auditWarming = false;
    std::uint64_t consecutiveAuditFailures = 0;
    /** Per-cluster audit relative-error accumulators feeding the
     *  statistical drift trigger; cleared on learning entry. */
    std::map<std::uint32_t, RunningStats> auditErr_;
    std::uint32_t lastMatchedCluster_ = obs::accuracyNoCluster;
    Stats stats_;

    // Telemetry (null/cached-pointer scheme: see obs/telemetry.hh).
    obs::Telemetry *telemetry_ = nullptr;
    std::uint8_t serviceIndex_ = obs::traceNoService;
    obs::Counter *cDecideDetail_ = nullptr;
    obs::Counter *cDecideEmulate_ = nullptr;
    obs::Counter *cPredicted_ = nullptr;
    obs::Counter *cOutliers_ = nullptr;
    obs::Counter *cRelearn_ = nullptr;
    obs::Counter *cClustersCreated_ = nullptr;
    obs::Counter *cAudits_ = nullptr;
    obs::Counter *cAuditFailures_ = nullptr;
    obs::Counter *cDriftResets_ = nullptr;
    obs::Gauge *gClusters_ = nullptr;
    obs::Histogram *hPredictedInsts_ = nullptr;
};

} // namespace osp

#endif // OSP_CORE_SERVICE_PREDICTOR_HH
