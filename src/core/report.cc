#include "report.hh"

#include <cmath>
#include <map>

namespace osp
{

double
absError(double measured, double reference)
{
    if (reference == 0.0)
        return 0.0;
    return std::fabs(measured - reference) / std::fabs(reference);
}

double
estimatedSpeedup(InstCount total_insts, InstCount predicted_insts,
                 double slowdown)
{
    if (total_insts == 0)
        return 1.0;
    auto n = static_cast<double>(total_insts);
    auto x = static_cast<double>(predicted_insts);
    return n / (x / slowdown + (n - x));
}

double
estimatedSpeedup(const RunTotals &totals, double slowdown)
{
    return estimatedSpeedup(totals.totalInsts(), totals.osPredInsts,
                            slowdown);
}

std::vector<ServiceCharacterization>
characterizeServices(const std::vector<IntervalRecord> &intervals,
                     double range_frac, std::uint64_t skip_first)
{
    // Bucket intervals per service, building a PLT per service with
    // the same clustering rule the predictor uses.
    std::map<int, ServiceCharacterization> chars;
    std::map<int, PerfLookupTable> tables;

    for (const auto &rec : intervals) {
        if (rec.invocation < skip_first)
            continue;
        int t = static_cast<int>(rec.type);
        auto [it, fresh] =
            chars.try_emplace(t, ServiceCharacterization{});
        if (fresh)
            it->second.type = rec.type;
        ServiceCharacterization &c = it->second;
        ++c.invocations;
        c.cycles.add(static_cast<double>(rec.cycles));
        c.ipc.add(rec.ipc());
        c.insts.add(static_cast<double>(rec.insts));

        auto [tit, tfresh] = tables.try_emplace(t, range_frac);
        ServiceMetrics m;
        m.insts = rec.insts;
        m.cycles = rec.cycles;
        m.mem = rec.mem;
        tit->second.record(m);
    }

    std::vector<ServiceCharacterization> out;
    out.reserve(chars.size());
    for (auto &[t, c] : chars) {
        c.cvCycles = c.cycles.cv();
        c.cvIpc = c.ipc.cv();
        const PerfLookupTable &plt = tables.at(t);
        c.numClusters = plt.numClusters();
        double weight_total = 0.0;
        double cyc = 0.0;
        double ipc = 0.0;
        for (const auto &cluster : plt.allClusters()) {
            auto w = static_cast<double>(cluster.count());
            weight_total += w;
            cyc += w * cluster.cyclesStats().cv();
            ipc += w * cluster.ipcStats().cv();
        }
        if (weight_total > 0.0) {
            c.clusteredCvCycles = cyc / weight_total;
            c.clusteredCvIpc = ipc / weight_total;
        }
        out.push_back(c);
    }
    return out;
}

JsonValue
toJson(const HierarchyCounts &mem)
{
    JsonValue v = JsonValue::object();
    v.add("l1i_accesses", mem.l1iAccesses);
    v.add("l1i_misses", mem.l1iMisses);
    v.add("l1d_accesses", mem.l1dAccesses);
    v.add("l1d_misses", mem.l1dMisses);
    v.add("l2_accesses", mem.l2Accesses);
    v.add("l2_misses", mem.l2Misses);
    return v;
}

JsonValue
perServiceJson(const RunTotals &totals)
{
    JsonValue arr = JsonValue::array();
    for (int t = 0; t < numServiceTypes; ++t) {
        const ServiceTotals &s = totals.perService[t];
        if (s.invocations == 0)
            continue;
        JsonValue v = JsonValue::object();
        v.add("service", serviceName(static_cast<ServiceType>(t)));
        v.add("invocations", s.invocations);
        v.add("simulated", s.simulated);
        v.add("predicted", s.predicted);
        v.add("insts", s.insts);
        v.add("cycles", s.cycles);
        v.add("coverage",
              static_cast<double>(s.predicted) /
                  static_cast<double>(s.invocations));
        arr.append(std::move(v));
    }
    return arr;
}

JsonValue
toJson(const RunTotals &totals)
{
    JsonValue v = JsonValue::object();
    v.add("app_insts", totals.appInsts);
    v.add("os_insts", totals.osInsts);
    v.add("os_pred_insts", totals.osPredInsts);
    v.add("app_cycles", totals.appCycles);
    v.add("os_sim_cycles", totals.osSimCycles);
    v.add("os_pred_cycles", totals.osPredCycles);
    v.add("total_insts", totals.totalInsts());
    v.add("total_cycles", totals.totalCycles());
    v.add("ipc", totals.ipc());
    v.add("os_inst_frac", totals.osInstFraction());
    v.add("os_invocations", totals.osInvocations);
    v.add("os_simulated", totals.osSimulated);
    v.add("os_predicted", totals.osPredicted);
    v.add("coverage", totals.coverage());
    v.add("measured_mem", toJson(totals.measuredMem));
    v.add("predicted_mem", toJson(totals.predictedMem));
    v.add("per_service", perServiceJson(totals));
    return v;
}

JsonValue
toJson(const ServicePredictor::Stats &stats)
{
    JsonValue v = JsonValue::object();
    v.add("warmup_runs", stats.warmupRuns);
    v.add("learned_runs", stats.learnedRuns);
    v.add("predicted_runs", stats.predictedRuns);
    v.add("outliers", stats.outliers);
    v.add("relearn_events", stats.relearnEvents);
    v.add("audits", stats.audits);
    v.add("audit_failures", stats.auditFailures);
    v.add("audit_warmup_runs", stats.auditWarmupRuns);
    v.add("drift_resets", stats.driftResets);
    return v;
}

namespace
{

/** "sys_read" for known indices, the bare number otherwise. */
std::string
accuracyServiceName(std::uint8_t service)
{
    if (service < numServiceTypes)
        return serviceName(static_cast<ServiceType>(service));
    return std::to_string(service);
}

/** {"n", "mean", "stddev", "min", "max"[, "ci95"]} of an error
 *  distribution (the CI only once it is defined). */
JsonValue
errDistJson(const RunningStats &err, double ci95, bool has_ci)
{
    JsonValue v = JsonValue::object();
    v.add("n", err.count());
    v.add("mean", err.mean());
    v.add("stddev", err.sampleStddev());
    v.add("min", err.count() ? err.min() : 0.0);
    v.add("max", err.count() ? err.max() : 0.0);
    if (has_ci)
        v.add("ci95", ci95);
    return v;
}

} // namespace

JsonValue
toJson(const obs::AccuracySnapshot &snapshot)
{
    obs::AccuracyRollup roll = rollupAccuracy(snapshot);

    JsonValue v = JsonValue::object();
    v.add("tolerance", snapshot.tolerance);
    v.add("total_cycles", snapshot.totalCycles);
    v.add("predicted_cycles", snapshot.predictedCycles);
    v.add("predictions", roll.predictions);
    v.add("outlier_predictions", roll.outlierPredictions);
    v.add("audits", roll.audits);
    v.add("audit_failures", roll.auditFailures);
    v.add("drifting_clusters", roll.driftingClusters);
    v.add("unattributed_cycles", roll.unattributedCycles);
    if (roll.err.count())
        v.add("audit_err",
              errDistJson(roll.err, roll.ci95, roll.hasCi));
    if (roll.hasEstimate) {
        JsonValue est = JsonValue::object();
        est.add("rel_total_err", roll.estRelTotalErr);
        if (roll.hasCi)
            est.add("ci95", roll.estCi95);
        v.add("estimate", std::move(est));
    }

    JsonValue clusters = JsonValue::array();
    for (const obs::AccuracyEntry &e : snapshot.entries) {
        JsonValue c = JsonValue::object();
        c.add("service", accuracyServiceName(e.service));
        c.add("cluster",
              e.cluster == obs::accuracyNoCluster
                  ? static_cast<std::int64_t>(-1)
                  : static_cast<std::int64_t>(e.cluster));
        c.add("predictions", e.predictions);
        c.add("outlier_predictions", e.outlierPredictions);
        c.add("predicted_cycles", e.predictedCycles);
        c.add("audits", e.audits);
        c.add("audit_failures", e.auditFailures);
        if (e.errCount)
            c.add("err", errDistJson(e.errStats(), e.ci95, e.hasCi));
        if (e.missCount) {
            JsonValue m = JsonValue::object();
            m.add("n", e.missCount);
            m.add("mean", e.missMean);
            c.add("l2miss_err", std::move(m));
        }
        if (e.ipcCount) {
            JsonValue m = JsonValue::object();
            m.add("n", e.ipcCount);
            m.add("mean", e.ipcMean);
            c.add("ipc_err", std::move(m));
        }
        c.add("drift", e.drift);
        if (e.errCount) {
            // The cluster's slice of the error budget: its mean
            // signed error weighted by the predicted-cycle mass it
            // produced, in cycles.
            c.add("contribution_cycles",
                  e.errMean *
                      static_cast<double>(e.predictedCycles));
        }
        clusters.append(std::move(c));
    }
    v.add("clusters", std::move(clusters));
    return v;
}

CvSummary
summarizeCv(const std::vector<ServiceCharacterization> &services)
{
    CvSummary s;
    double weight_total = 0.0;
    for (const auto &c : services) {
        // Only services invoked more than once have defined
        // variation (mirrors Fig. 3's filter).
        if (c.invocations < 2)
            continue;
        auto w = static_cast<double>(c.invocations);
        weight_total += w;
        s.cvCycles += w * c.cvCycles;
        s.clusteredCvCycles += w * c.clusteredCvCycles;
        s.cvIpc += w * c.cvIpc;
        s.clusteredCvIpc += w * c.clusteredCvIpc;
    }
    if (weight_total > 0.0) {
        s.cvCycles /= weight_total;
        s.clusteredCvCycles /= weight_total;
        s.cvIpc /= weight_total;
        s.clusteredCvIpc /= weight_total;
    }
    return s;
}

} // namespace osp
