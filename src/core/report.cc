#include "report.hh"

#include <cmath>
#include <map>

namespace osp
{

double
absError(double measured, double reference)
{
    if (reference == 0.0)
        return 0.0;
    return std::fabs(measured - reference) / std::fabs(reference);
}

double
estimatedSpeedup(InstCount total_insts, InstCount predicted_insts,
                 double slowdown)
{
    if (total_insts == 0)
        return 1.0;
    auto n = static_cast<double>(total_insts);
    auto x = static_cast<double>(predicted_insts);
    return n / (x / slowdown + (n - x));
}

double
estimatedSpeedup(const RunTotals &totals, double slowdown)
{
    return estimatedSpeedup(totals.totalInsts(), totals.osPredInsts,
                            slowdown);
}

std::vector<ServiceCharacterization>
characterizeServices(const std::vector<IntervalRecord> &intervals,
                     double range_frac, std::uint64_t skip_first)
{
    // Bucket intervals per service, building a PLT per service with
    // the same clustering rule the predictor uses.
    std::map<int, ServiceCharacterization> chars;
    std::map<int, PerfLookupTable> tables;

    for (const auto &rec : intervals) {
        if (rec.invocation < skip_first)
            continue;
        int t = static_cast<int>(rec.type);
        auto [it, fresh] =
            chars.try_emplace(t, ServiceCharacterization{});
        if (fresh)
            it->second.type = rec.type;
        ServiceCharacterization &c = it->second;
        ++c.invocations;
        c.cycles.add(static_cast<double>(rec.cycles));
        c.ipc.add(rec.ipc());
        c.insts.add(static_cast<double>(rec.insts));

        auto [tit, tfresh] = tables.try_emplace(t, range_frac);
        ServiceMetrics m;
        m.insts = rec.insts;
        m.cycles = rec.cycles;
        m.mem = rec.mem;
        tit->second.record(m);
    }

    std::vector<ServiceCharacterization> out;
    out.reserve(chars.size());
    for (auto &[t, c] : chars) {
        c.cvCycles = c.cycles.cv();
        c.cvIpc = c.ipc.cv();
        const PerfLookupTable &plt = tables.at(t);
        c.numClusters = plt.numClusters();
        double weight_total = 0.0;
        double cyc = 0.0;
        double ipc = 0.0;
        for (const auto &cluster : plt.allClusters()) {
            auto w = static_cast<double>(cluster.count());
            weight_total += w;
            cyc += w * cluster.cyclesStats().cv();
            ipc += w * cluster.ipcStats().cv();
        }
        if (weight_total > 0.0) {
            c.clusteredCvCycles = cyc / weight_total;
            c.clusteredCvIpc = ipc / weight_total;
        }
        out.push_back(c);
    }
    return out;
}

CvSummary
summarizeCv(const std::vector<ServiceCharacterization> &services)
{
    CvSummary s;
    double weight_total = 0.0;
    for (const auto &c : services) {
        // Only services invoked more than once have defined
        // variation (mirrors Fig. 3's filter).
        if (c.invocations < 2)
            continue;
        auto w = static_cast<double>(c.invocations);
        weight_total += w;
        s.cvCycles += w * c.cvCycles;
        s.clusteredCvCycles += w * c.clusteredCvCycles;
        s.cvIpc += w * c.cvIpc;
        s.clusteredCvIpc += w * c.clusteredCvIpc;
    }
    if (weight_total > 0.0) {
        s.cvCycles /= weight_total;
        s.clusteredCvCycles /= weight_total;
        s.cvIpc /= weight_total;
        s.clusteredCvIpc /= weight_total;
    }
    return s;
}

} // namespace osp
