#include "plt.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace osp
{

PerfLookupTable::PerfLookupTable(double range_frac,
                                 double ema_alpha, bool use_mix)
    : rangeFrac_(range_frac), emaAlpha_(ema_alpha), useMix_(use_mix)
{
    if (range_frac <= 0.0 || range_frac >= 1.0)
        osp_fatal("PerfLookupTable range fraction must be in (0,1)");
}

bool
PerfLookupTable::record(const ServiceMetrics &metrics)
{
    // Find the matching cluster with the closest centroid.
    ScaledCluster *best = nullptr;
    double best_dist = std::numeric_limits<double>::infinity();
    for (auto &cluster : clusters) {
        if (cluster.matches(metrics.insts) &&
            (!useMix_ || cluster.matchesMix(metrics.signature()))) {
            double d = cluster.distance(metrics.insts);
            if (d < best_dist) {
                best_dist = d;
                best = &cluster;
            }
        }
    }
    if (best) {
        best->add(metrics);
        return false;
    }
    clusters.emplace_back(metrics, rangeFrac_, emaAlpha_);
    return true;
}

const ScaledCluster *
PerfLookupTable::match(const Signature &sig) const
{
    const ScaledCluster *best = nullptr;
    double best_dist = std::numeric_limits<double>::infinity();
    for (const auto &cluster : clusters) {
        if (cluster.matches(sig.insts) &&
            (!useMix_ || !sig.hasMix || cluster.matchesMix(sig))) {
            double d = cluster.distance(sig.insts);
            if (d < best_dist) {
                best_dist = d;
                best = &cluster;
            }
        }
    }
    return best;
}

const ScaledCluster *
PerfLookupTable::closest(InstCount insts) const
{
    const ScaledCluster *best = nullptr;
    double best_dist = std::numeric_limits<double>::infinity();
    for (const auto &cluster : clusters) {
        double d = cluster.distance(insts);
        if (d < best_dist) {
            best_dist = d;
            best = &cluster;
        }
    }
    return best;
}

std::vector<ClusterSnapshot>
PerfLookupTable::snapshotAll() const
{
    std::vector<ClusterSnapshot> out;
    out.reserve(clusters.size());
    for (const auto &cluster : clusters)
        out.push_back(cluster.snapshot());
    return out;
}

void
PerfLookupTable::restore(
    const std::vector<ClusterSnapshot> &snapshots)
{
    clusters.clear();
    outliers_.clear();
    for (const auto &s : snapshots)
        clusters.emplace_back(s, rangeFrac_, emaAlpha_);
    // Mix statistics are not serialized; mix matching cannot apply
    // to restored tables.
    useMix_ = false;
}

OutlierEntry &
PerfLookupTable::recordOutlier(InstCount insts,
                               std::uint64_t invocation_index)
{
    OutlierEntry *best = nullptr;
    double best_dist = std::numeric_limits<double>::infinity();
    for (auto &entry : outliers_) {
        if (entry.matches(insts, rangeFrac_)) {
            double d = std::fabs(static_cast<double>(insts) -
                                 entry.centroid);
            if (d < best_dist) {
                best_dist = d;
                best = &entry;
            }
        }
    }
    if (!best) {
        outliers_.emplace_back();
        best = &outliers_.back();
        best->centroid = static_cast<double>(insts);
    } else {
        // Running-mean centroid update.
        double n = static_cast<double>(best->matchCount);
        best->centroid =
            (best->centroid * n + static_cast<double>(insts)) /
            (n + 1.0);
    }
    best->matchCount += 1;
    best->occurredAt.push_back(invocation_index);
    return *best;
}

} // namespace osp
