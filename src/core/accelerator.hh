/**
 * @file
 * The full-system simulation accelerator: the ServiceController that
 * plugs the per-service predictors into the Machine.
 *
 * This is the top of the paper's contribution. Attach one to a
 * Machine and OS-service invocations are routed per service type
 * through warm-up -> learning -> prediction, with detailed
 * simulation replaced by emulation + prediction wherever the
 * predictor is confident (Sec. 4). The paper's headline numbers
 * come out of exactly this object: 89% coverage, 3.2% average
 * execution-time error, 4.9x estimated speedup.
 */

#ifndef OSP_CORE_ACCELERATOR_HH
#define OSP_CORE_ACCELERATOR_HH

#include <array>
#include <istream>
#include <memory>
#include <ostream>

#include "service_predictor.hh"
#include "sim/interfaces.hh"

namespace osp
{

/** See file comment. */
class Accelerator : public ServiceController
{
  public:
    explicit Accelerator(const PredictorParams &params = {});

    // ServiceController
    DetailLevel chooseLevel(ServiceType type) override;
    Prediction onServiceEnd(const IntervalOutcome &outcome) override;

    bool
    wantsOpMix() const override
    {
        // The learned backend consumes per-class mix ratios as
        // model features regardless of the PLT mix-signature
        // refinement flag.
        return params_.useMixSignature ||
               params_.backend == PredictorBackendKind::Learned;
    }

    /** Per-service predictor access (reports, tests). */
    const ServicePredictor &predictor(ServiceType type) const;

    /**
     * Aggregate predictor statistics over all services. Note this
     * is a total: the per-service split of every field — including
     * audits/auditFailures — is surfaced through telemetry as
     * "predictor.<service>" counters and through the accuracy
     * ledger's per-(service, cluster) entries.
     */
    ServicePredictor::Stats aggregateStats() const;

    /**
     * Serialize every service's learned clusters (a "performance
     * profile") to a line-oriented text stream.
     */
    void saveState(std::ostream &os) const;

    /**
     * Load a saved profile: every listed service starts directly in
     * the prediction phase with the loaded table. Returns false on
     * a malformed stream (the accelerator is left unchanged on
     * header mismatch, partially loaded otherwise).
     *
     * Reusing a profile across runs is exactly the offline approach
     * the paper argues against (Sec. 2); the abl5 bench quantifies
     * how much accuracy that costs.
     */
    bool loadState(std::istream &is);

    const PredictorParams &params() const { return params_; }

    /**
     * Attach a telemetry sink. Every per-service predictor (existing
     * and future) registers its instruments as
     * "predictor.<service name>" — including per-service audit
     * counters — and routes predictions and audit outcomes into the
     * sink's accuracy ledger, whose drift tolerance is set to this
     * accelerator's auditTolerance. Pass nullptr to detach.
     */
    void setTelemetry(obs::Telemetry *telemetry);

  private:
    ServicePredictor &predictorRef(ServiceType type);

    PredictorParams params_;
    std::array<std::unique_ptr<ServicePredictor>, numServiceTypes>
        predictors;
    obs::Telemetry *telemetry_ = nullptr;
};

} // namespace osp

#endif // OSP_CORE_ACCELERATOR_HH
