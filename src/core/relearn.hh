/**
 * @file
 * The four re-learning strategies of Sec. 4.4.
 *
 * During prediction periods, an invocation whose signature matches
 * no PLT cluster is an *outlier*. Its performance is predicted from
 * the closest cluster either way; the strategy decides whether the
 * outlier should also trigger a re-learning period (a fresh window
 * of fully-simulated invocations):
 *
 *  - Best-Match:  never re-learn (highest coverage, worst accuracy);
 *  - Eager:       re-learn on every outlier (best accuracy, lowest
 *                 coverage);
 *  - Delayed:     re-learn once the same outlier cluster has
 *                 occurred a fixed number of times (4 in the paper);
 *  - Statistical: collect estimated probabilities of occurrence
 *                 (EPOs) over a moving window of W invocations, and
 *                 re-learn only when the one-sided Student's-t upper
 *                 bound B_y on the outlier cluster's true
 *                 probability reaches p_min (Eq. 4-8) — i.e. when we
 *                 can no longer be confident the cluster is too rare
 *                 to matter.
 */

#ifndef OSP_CORE_RELEARN_HH
#define OSP_CORE_RELEARN_HH

#include <cstdint>
#include <memory>

#include "plt.hh"

namespace osp
{

/** Strategy selector. */
enum class RelearnStrategy
{
    BestMatch,
    Eager,
    Delayed,
    Statistical,
};

/** Display name ("best-match", "eager", ...). */
const char *relearnStrategyName(RelearnStrategy strategy);

/** Tunables consumed by the policies. */
struct RelearnParams
{
    RelearnStrategy strategy = RelearnStrategy::Statistical;
    /** Minimum probability of occurrence worth capturing. */
    double pMin = 0.03;
    /** Moving-window length W for EPO estimation. */
    std::uint64_t movingWindow = 100;
    /** Outlier occurrences before Delayed re-learns. */
    std::uint64_t delayedThreshold = 4;
    /** EPOs required before Statistical tests the bound. */
    std::uint64_t minEpos = 4;
    /** One-sided significance level for the t-test. */
    double alpha = 0.05;
};

/**
 * Decides whether an outlier occurrence triggers re-learning.
 * Stateless across services: all state lives in the PLT's outlier
 * entries, so one policy instance serves every service type.
 */
class RelearnPolicy
{
  public:
    virtual ~RelearnPolicy() = default;

    /**
     * Handle one outlier occurrence.
     *
     * @param plt        the service's lookup table (outlier entries
     *                   are recorded/cleared here)
     * @param signature  the outlier's instruction count
     * @param invocation per-service invocation index
     * @return true to trigger a re-learning period (the caller must
     *         then clear outlier entries via the PLT)
     */
    virtual bool onOutlier(PerfLookupTable &plt, InstCount signature,
                           std::uint64_t invocation) = 0;

    /** Factory. */
    static std::unique_ptr<RelearnPolicy>
    make(const RelearnParams &params);
};

} // namespace osp

#endif // OSP_CORE_RELEARN_HH
