#include "accelerator.hh"

#include <string>
#include <vector>

#include "util/logging.hh"

namespace osp
{

Accelerator::Accelerator(const PredictorParams &params)
    : params_(params)
{
}

ServicePredictor &
Accelerator::predictorRef(ServiceType type)
{
    auto idx = static_cast<int>(type);
    if (idx < 0 || idx >= numServiceTypes)
        osp_panic("Accelerator: bad service type ", idx);
    if (!predictors[idx]) {
        predictors[idx] =
            std::make_unique<ServicePredictor>(params_);
        if (telemetry_) {
            predictors[idx]->attachTelemetry(
                telemetry_,
                std::string("predictor.") +
                    serviceName(static_cast<ServiceType>(idx)),
                static_cast<std::uint8_t>(idx));
        }
    }
    return *predictors[idx];
}

void
Accelerator::setTelemetry(obs::Telemetry *telemetry)
{
    telemetry_ = telemetry;
    // The accuracy ledger's drift flag is a CI-on-the-mean test, so
    // it judges against the same band the predictors' statistical
    // drift trigger uses — a flagged cluster is one the trigger
    // would reset (or already has).
    if (telemetry)
        telemetry->accuracy.setTolerance(params_.auditMeanTolerance);
    for (int t = 0; t < numServiceTypes; ++t) {
        if (!predictors[t])
            continue;
        predictors[t]->attachTelemetry(
            telemetry,
            std::string("predictor.") +
                serviceName(static_cast<ServiceType>(t)),
            static_cast<std::uint8_t>(t));
    }
}

const ServicePredictor &
Accelerator::predictor(ServiceType type) const
{
    auto idx = static_cast<int>(type);
    if (idx < 0 || idx >= numServiceTypes || !predictors[idx])
        osp_panic("Accelerator: no predictor for service ", idx);
    return *predictors[idx];
}

DetailLevel
Accelerator::chooseLevel(ServiceType type)
{
    return predictorRef(type).decideDetail() ? DetailLevel::OooCache
                                             : DetailLevel::Emulate;
}

ServiceController::Prediction
Accelerator::onServiceEnd(const IntervalOutcome &outcome)
{
    ServicePredictor &pred = predictorRef(outcome.type);
    Prediction result;

    if (outcome.detailed) {
        ServiceMetrics m;
        m.insts = outcome.insts;
        m.cycles = outcome.cycles;
        m.mem = outcome.mem;
        m.loads = outcome.loads;
        m.stores = outcome.stores;
        m.branches = outcome.branches;
        pred.recordDetailed(m);
        return result;
    }

    Signature sig{outcome.insts, outcome.loads, outcome.stores,
                  outcome.branches};
    ServiceMetrics m = pred.predict(sig, outcome.invocation);
    result.cycles = m.cycles;
    result.mem = m.mem;
    return result;
}

void
Accelerator::saveState(std::ostream &os) const
{
    os << "ospredict-profile v1\n";
    for (int t = 0; t < numServiceTypes; ++t) {
        if (!predictors[t])
            continue;
        auto snapshots = predictors[t]->snapshotTable();
        if (snapshots.empty())
            continue;
        os << "service " << t << " " << snapshots.size() << "\n";
        for (const auto &s : snapshots) {
            os << s.count << " " << s.instMean << " " << s.instM2
               << " " << s.cyclesMean << " " << s.cyclesM2 << " "
               << s.ipcMean << " " << s.l1iAccMean << " "
               << s.l1iMissMean << " " << s.l1dAccMean << " "
               << s.l1dMissMean << " " << s.l2AccMean << " "
               << s.l2MissMean << "\n";
        }
    }
    os << "end\n";
}

bool
Accelerator::loadState(std::istream &is)
{
    std::string header;
    std::string version;
    if (!(is >> header >> version) ||
        header != "ospredict-profile" || version != "v1") {
        return false;
    }
    std::string word;
    while (is >> word) {
        if (word == "end")
            return true;
        if (word != "service")
            return false;
        int type = -1;
        std::size_t count = 0;
        if (!(is >> type >> count) || type < 0 ||
            type >= numServiceTypes) {
            return false;
        }
        std::vector<ClusterSnapshot> snapshots(count);
        for (auto &s : snapshots) {
            if (!(is >> s.count >> s.instMean >> s.instM2 >>
                  s.cyclesMean >> s.cyclesM2 >> s.ipcMean >>
                  s.l1iAccMean >> s.l1iMissMean >> s.l1dAccMean >>
                  s.l1dMissMean >> s.l2AccMean >> s.l2MissMean)) {
                return false;
            }
        }
        predictorRef(static_cast<ServiceType>(type))
            .restoreTable(snapshots);
    }
    return false;  // missing "end"
}

ServicePredictor::Stats
Accelerator::aggregateStats() const
{
    ServicePredictor::Stats total;
    for (const auto &p : predictors) {
        if (!p)
            continue;
        const auto &s = p->stats();
        total.warmupRuns += s.warmupRuns;
        total.learnedRuns += s.learnedRuns;
        total.predictedRuns += s.predictedRuns;
        total.outliers += s.outliers;
        total.relearnEvents += s.relearnEvents;
        total.audits += s.audits;
        total.auditFailures += s.auditFailures;
        total.auditWarmupRuns += s.auditWarmupRuns;
        total.driftResets += s.driftResets;
    }
    return total;
}

} // namespace osp
