#include "service_predictor.hh"

#include <algorithm>
#include <cmath>

#include "stats/learning_window.hh"
#include "util/logging.hh"

namespace osp
{

ServicePredictor::ServicePredictor(const PredictorParams &p)
    : params(p),
      window(p.learningWindow
                 ? p.learningWindow
                 : learningWindowSize(p.pMin, p.doc)),
      plt(p.clusterRange, p.emaAlpha, p.useMixSignature),
      policy(RelearnPolicy::make(p.relearn))
{
    if (params.warmupInvocations == 0)
        mode_ = Mode::Learning;
}

void
ServicePredictor::attachTelemetry(obs::Telemetry *telemetry,
                                  const std::string &component,
                                  std::uint8_t service_index)
{
    telemetry_ = telemetry;
    serviceIndex_ = service_index;
    if (!telemetry) {
        cDecideDetail_ = nullptr;
        cDecideEmulate_ = nullptr;
        cPredicted_ = nullptr;
        cOutliers_ = nullptr;
        cRelearn_ = nullptr;
        cClustersCreated_ = nullptr;
        gClusters_ = nullptr;
        hPredictedInsts_ = nullptr;
        return;
    }
    obs::Registry &reg = telemetry->registry;
    cDecideDetail_ = &reg.counter(component, "decide_detail");
    cDecideEmulate_ = &reg.counter(component, "decide_emulate");
    cPredicted_ = &reg.counter(component, "predicted_runs");
    cOutliers_ = &reg.counter(component, "outliers");
    cRelearn_ = &reg.counter(component, "relearn_events");
    cClustersCreated_ = &reg.counter(component, "clusters_created");
    gClusters_ = &reg.gauge(component, "plt_clusters");
    hPredictedInsts_ =
        &reg.histogram(component, "predicted_insts");
}

void
ServicePredictor::enterMode(Mode to)
{
    if (to == mode_)
        return;
    trace(obs::TraceEventKind::ModeTransition,
          static_cast<std::uint64_t>(mode_),
          static_cast<std::uint64_t>(to));
    mode_ = to;
}

void
ServicePredictor::recordSample(const ServiceMetrics &metrics)
{
    bool fresh = plt.record(metrics);
    if (fresh && cClustersCreated_)
        cClustersCreated_->inc();
    if (gClusters_)
        gClusters_->set(static_cast<double>(plt.numClusters()));
}

bool
ServicePredictor::warmupStable() const
{
    std::uint64_t w = params.stabilityWindow;
    if (w == 0)
        return true;
    // Too few samples to assess drift: do not extend the warm-up
    // beyond the configured minimum.
    if (warmupCpi.size() < 2 * w)
        return true;
    double recent = 0.0;
    double prior = 0.0;
    std::size_t n = warmupCpi.size();
    for (std::size_t i = n - w; i < n; ++i)
        recent += warmupCpi[i];
    for (std::size_t i = n - 2 * w; i < n - w; ++i)
        prior += warmupCpi[i];
    if (prior <= 0.0)
        return true;
    return std::fabs(recent - prior) / prior <
           params.stabilityTolerance;
}

bool
ServicePredictor::decideDetail()
{
    if (mode_ != Mode::Predicting) {
        if (cDecideDetail_)
            cDecideDetail_->inc();
        return true;
    }
    if (params.auditEvery && ++sinceAudit >= params.auditEvery) {
        sinceAudit = 0;
        auditPending = true;
        if (cDecideDetail_)
            cDecideDetail_->inc();
        return true;
    }
    if (cDecideEmulate_)
        cDecideEmulate_->inc();
    return false;
}

void
ServicePredictor::recordDetailed(const ServiceMetrics &metrics)
{
    if (auditPending && mode_ == Mode::Predicting) {
        // Audit sample: compare reality with what we would have
        // predicted for this signature.
        auditPending = false;
        ++stats_.audits;
        const ScaledCluster *cluster =
            plt.match(metrics.signature());
        if (!cluster)
            cluster = plt.closest(metrics.insts);
        bool failed = true;
        if (cluster) {
            // Variance-aware check: a deviation only fails the
            // audit if it exceeds both the relative tolerance and
            // three standard deviations of the cluster's own
            // historical spread — ordinary within-cluster noise
            // must not trigger drift resets.
            double predicted =
                static_cast<double>(cluster->predict().cycles);
            double actual = static_cast<double>(metrics.cycles);
            double spread =
                3.0 * cluster->cyclesStats().stddev();
            double bound = std::max(
                params.auditTolerance * predicted, spread);
            failed = predicted > 0.0 &&
                     std::fabs(actual - predicted) > bound;
        }
        if (failed) {
            // Drift evidence: do NOT fold the sample into the
            // cluster (it would inflate the spread and drag the
            // mean just enough to mask further failures).
            ++stats_.auditFailures;
            ++consecutiveAuditFailures;
            trace(obs::TraceEventKind::Audit, 0,
                  consecutiveAuditFailures);
            if (consecutiveAuditFailures >=
                params.auditTriggerCount) {
                // Sustained drift: re-enter a learning window
                // *without* clearing the table. The fresh window's
                // samples pull each cluster's running means toward
                // current behaviour; if drift persists, later
                // audits trigger again and the means converge
                // geometrically — while a noisy-but-stationary
                // service loses nothing.
                consecutiveAuditFailures = 0;
                ++stats_.driftResets;
                ++stats_.relearnEvents;
                if (cRelearn_)
                    cRelearn_->inc();
                trace(obs::TraceEventKind::Relearn, 1, window);
                enterMode(Mode::Learning);
                phaseCount = 0;
                ++stats_.learnedRuns;
                recordSample(metrics);
                ++phaseCount;
                return;
            }
            return;
        }
        // A passing audit refreshes the matched cluster.
        trace(obs::TraceEventKind::Audit, 1, 0);
        consecutiveAuditFailures = 0;
        ++stats_.learnedRuns;
        recordSample(metrics);
        return;
    }
    auditPending = false;

    switch (mode_) {
      case Mode::Warmup:
        ++stats_.warmupRuns;
        ++phaseCount;
        if (metrics.insts) {
            warmupCpi.push_back(
                static_cast<double>(metrics.cycles) /
                static_cast<double>(metrics.insts));
        }
        if (phaseCount >= params.warmupInvocations &&
            (warmupStable() ||
             phaseCount >= params.maxWarmupInvocations)) {
            enterMode(Mode::Learning);
            phaseCount = 0;
            warmupCpi.clear();
            warmupCpi.shrink_to_fit();
        }
        return;
      case Mode::Learning:
        ++stats_.learnedRuns;
        recordSample(metrics);
        ++phaseCount;
        if (phaseCount >= window) {
            enterMode(Mode::Predicting);
            phaseCount = 0;
        }
        return;
      case Mode::Predicting:
        // A detailed run while predicting (e.g. the controller was
        // overridden): still learn from it.
        ++stats_.learnedRuns;
        recordSample(metrics);
        return;
    }
    osp_panic("ServicePredictor: bad mode");
}

void
ServicePredictor::restoreTable(
    const std::vector<ClusterSnapshot> &snapshots)
{
    plt.restore(snapshots);
    enterMode(snapshots.empty() ? Mode::Warmup : Mode::Predicting);
    phaseCount = 0;
    warmupCpi.clear();
    if (gClusters_)
        gClusters_->set(static_cast<double>(plt.numClusters()));
}

ServiceMetrics
ServicePredictor::predict(const Signature &signature,
                          std::uint64_t invocation_index,
                          bool *was_outlier)
{
    ++stats_.predictedRuns;
    if (cPredicted_)
        cPredicted_->inc();
    if (hPredictedInsts_)
        hPredictedInsts_->observe(signature.insts);

    const ScaledCluster *cluster = plt.match(signature);
    bool outlier = (cluster == nullptr);
    if (was_outlier)
        *was_outlier = outlier;

    if (outlier) {
        ++stats_.outliers;
        if (cOutliers_)
            cOutliers_->inc();
        trace(obs::TraceEventKind::Outlier, signature.insts,
              plt.numOutlierEntries());
        cluster = plt.closest(signature.insts);
        if (policy->onOutlier(plt, signature.insts,
                              invocation_index)) {
            // Re-learning period: another full window of detailed
            // simulation for this service.
            ++stats_.relearnEvents;
            if (cRelearn_)
                cRelearn_->inc();
            trace(obs::TraceEventKind::Relearn, 0, window);
            plt.clearOutliers();
            enterMode(Mode::Learning);
            phaseCount = 0;
        }
    } else {
        trace(obs::TraceEventKind::ClusterMatch,
              static_cast<std::uint64_t>(
                  cluster - plt.allClusters().data()),
              signature.insts);
    }

    ServiceMetrics prediction;
    if (cluster)
        prediction = cluster->predict();
    prediction.insts = signature.insts;
    return prediction;
}

} // namespace osp
