#include "service_predictor.hh"

#include <algorithm>
#include <cmath>

#include "stats/learning_window.hh"
#include "util/logging.hh"

namespace osp
{

ServicePredictor::ServicePredictor(const PredictorParams &p)
    : params(p),
      window(p.learningWindow
                 ? p.learningWindow
                 : learningWindowSize(p.pMin, p.doc)),
      plt(p.clusterRange, p.emaAlpha, p.useMixSignature),
      policy(RelearnPolicy::make(p.relearn))
{
    if (params.warmupInvocations == 0)
        mode_ = Mode::Learning;
}

bool
ServicePredictor::warmupStable() const
{
    std::uint64_t w = params.stabilityWindow;
    if (w == 0)
        return true;
    // Too few samples to assess drift: do not extend the warm-up
    // beyond the configured minimum.
    if (warmupCpi.size() < 2 * w)
        return true;
    double recent = 0.0;
    double prior = 0.0;
    std::size_t n = warmupCpi.size();
    for (std::size_t i = n - w; i < n; ++i)
        recent += warmupCpi[i];
    for (std::size_t i = n - 2 * w; i < n - w; ++i)
        prior += warmupCpi[i];
    if (prior <= 0.0)
        return true;
    return std::fabs(recent - prior) / prior <
           params.stabilityTolerance;
}

bool
ServicePredictor::decideDetail()
{
    if (mode_ != Mode::Predicting)
        return true;
    if (params.auditEvery && ++sinceAudit >= params.auditEvery) {
        sinceAudit = 0;
        auditPending = true;
        return true;
    }
    return false;
}

void
ServicePredictor::recordDetailed(const ServiceMetrics &metrics)
{
    if (auditPending && mode_ == Mode::Predicting) {
        // Audit sample: compare reality with what we would have
        // predicted for this signature.
        auditPending = false;
        ++stats_.audits;
        const ScaledCluster *cluster =
            plt.match(metrics.signature());
        if (!cluster)
            cluster = plt.closest(metrics.insts);
        bool failed = true;
        if (cluster) {
            // Variance-aware check: a deviation only fails the
            // audit if it exceeds both the relative tolerance and
            // three standard deviations of the cluster's own
            // historical spread — ordinary within-cluster noise
            // must not trigger drift resets.
            double predicted =
                static_cast<double>(cluster->predict().cycles);
            double actual = static_cast<double>(metrics.cycles);
            double spread =
                3.0 * cluster->cyclesStats().stddev();
            double bound = std::max(
                params.auditTolerance * predicted, spread);
            failed = predicted > 0.0 &&
                     std::fabs(actual - predicted) > bound;
        }
        if (failed) {
            // Drift evidence: do NOT fold the sample into the
            // cluster (it would inflate the spread and drag the
            // mean just enough to mask further failures).
            ++stats_.auditFailures;
            ++consecutiveAuditFailures;
            if (consecutiveAuditFailures >=
                params.auditTriggerCount) {
                // Sustained drift: re-enter a learning window
                // *without* clearing the table. The fresh window's
                // samples pull each cluster's running means toward
                // current behaviour; if drift persists, later
                // audits trigger again and the means converge
                // geometrically — while a noisy-but-stationary
                // service loses nothing.
                consecutiveAuditFailures = 0;
                ++stats_.driftResets;
                ++stats_.relearnEvents;
                mode_ = Mode::Learning;
                phaseCount = 0;
                ++stats_.learnedRuns;
                plt.record(metrics);
                ++phaseCount;
                return;
            }
            return;
        }
        // A passing audit refreshes the matched cluster.
        consecutiveAuditFailures = 0;
        ++stats_.learnedRuns;
        plt.record(metrics);
        return;
    }
    auditPending = false;

    switch (mode_) {
      case Mode::Warmup:
        ++stats_.warmupRuns;
        ++phaseCount;
        if (metrics.insts) {
            warmupCpi.push_back(
                static_cast<double>(metrics.cycles) /
                static_cast<double>(metrics.insts));
        }
        if (phaseCount >= params.warmupInvocations &&
            (warmupStable() ||
             phaseCount >= params.maxWarmupInvocations)) {
            mode_ = Mode::Learning;
            phaseCount = 0;
            warmupCpi.clear();
            warmupCpi.shrink_to_fit();
        }
        return;
      case Mode::Learning:
        ++stats_.learnedRuns;
        plt.record(metrics);
        ++phaseCount;
        if (phaseCount >= window) {
            mode_ = Mode::Predicting;
            phaseCount = 0;
        }
        return;
      case Mode::Predicting:
        // A detailed run while predicting (e.g. the controller was
        // overridden): still learn from it.
        ++stats_.learnedRuns;
        plt.record(metrics);
        return;
    }
    osp_panic("ServicePredictor: bad mode");
}

void
ServicePredictor::restoreTable(
    const std::vector<ClusterSnapshot> &snapshots)
{
    plt.restore(snapshots);
    mode_ = snapshots.empty() ? Mode::Warmup : Mode::Predicting;
    phaseCount = 0;
    warmupCpi.clear();
}

ServiceMetrics
ServicePredictor::predict(const Signature &signature,
                          std::uint64_t invocation_index,
                          bool *was_outlier)
{
    ++stats_.predictedRuns;

    const ScaledCluster *cluster = plt.match(signature);
    bool outlier = (cluster == nullptr);
    if (was_outlier)
        *was_outlier = outlier;

    if (outlier) {
        ++stats_.outliers;
        cluster = plt.closest(signature.insts);
        if (policy->onOutlier(plt, signature.insts,
                              invocation_index)) {
            // Re-learning period: another full window of detailed
            // simulation for this service.
            ++stats_.relearnEvents;
            plt.clearOutliers();
            mode_ = Mode::Learning;
            phaseCount = 0;
        }
    }

    ServiceMetrics prediction;
    if (cluster)
        prediction = cluster->predict();
    prediction.insts = signature.insts;
    return prediction;
}

} // namespace osp
