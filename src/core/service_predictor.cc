#include "service_predictor.hh"

#include <algorithm>
#include <cmath>

#include "stats/learning_window.hh"
#include "util/logging.hh"

namespace osp
{

ServicePredictor::ServicePredictor(const PredictorParams &p)
    : params(p),
      window(p.learningWindow
                 ? p.learningWindow
                 : learningWindowSize(p.pMin, p.doc)),
      backend_(makePredictorBackend(p))
{
    if (params.warmupInvocations == 0)
        mode_ = Mode::Learning;
}

const PerfLookupTable &
ServicePredictor::table() const
{
    const PerfLookupTable *plt = backend_->asPlt();
    if (!plt)
        osp_panic("ServicePredictor::table: backend '",
                  backend_->name(), "' has no PLT");
    return *plt;
}

void
ServicePredictor::attachTelemetry(obs::Telemetry *telemetry,
                                  const std::string &component,
                                  std::uint8_t service_index)
{
    telemetry_ = telemetry;
    serviceIndex_ = service_index;
    if (!telemetry) {
        cDecideDetail_ = nullptr;
        cDecideEmulate_ = nullptr;
        cPredicted_ = nullptr;
        cOutliers_ = nullptr;
        cRelearn_ = nullptr;
        cClustersCreated_ = nullptr;
        cAudits_ = nullptr;
        cAuditFailures_ = nullptr;
        cDriftResets_ = nullptr;
        gClusters_ = nullptr;
        hPredictedInsts_ = nullptr;
        return;
    }
    obs::Registry &reg = telemetry->registry;
    cDecideDetail_ = &reg.counter(component, "decide_detail");
    cDecideEmulate_ = &reg.counter(component, "decide_emulate");
    cPredicted_ = &reg.counter(component, "predicted_runs");
    cOutliers_ = &reg.counter(component, "outliers");
    cRelearn_ = &reg.counter(component, "relearn_events");
    cClustersCreated_ = &reg.counter(component, "clusters_created");
    cAudits_ = &reg.counter(component, "audits");
    cAuditFailures_ = &reg.counter(component, "audit_failures");
    cDriftResets_ = &reg.counter(component, "drift_resets");
    gClusters_ = &reg.gauge(component, "plt_clusters");
    hPredictedInsts_ =
        &reg.histogram(component, "predicted_insts");
}

void
ServicePredictor::enterMode(Mode to)
{
    if (to == mode_)
        return;
    trace(obs::TraceEventKind::ModeTransition,
          static_cast<std::uint64_t>(mode_),
          static_cast<std::uint64_t>(to));
    mode_ = to;
    // A learning window shifts the cluster means the audit errors
    // were measured against, so the accumulated evidence no longer
    // describes the table that will be predicting afterwards.
    if (mode_ == Mode::Learning)
        auditErr_.clear();
}

void
ServicePredictor::auditDriftReset(const ServiceMetrics &metrics,
                                  std::uint32_t cluster_idx)
{
    // Sustained drift: re-enter a learning window *without*
    // clearing the table. The fresh window's samples pull each
    // cluster's running means toward current behaviour; if drift
    // persists, later audits trigger again and the means converge
    // geometrically — while a noisy-but-stationary service loses
    // nothing. The implicated cluster's history weight is clamped
    // to one window's worth of samples first: a long-lived cluster
    // holds thousands of members, and without the decay a 100-
    // sample window could never move its mean off the stale value
    // the audits just disproved.
    if (cluster_idx != obs::accuracyNoCluster)
        backend_->decayUnit(cluster_idx, window);
    consecutiveAuditFailures = 0;
    ++stats_.driftResets;
    if (cDriftResets_)
        cDriftResets_->inc();
    ++stats_.relearnEvents;
    if (cRelearn_)
        cRelearn_->inc();
    trace(obs::TraceEventKind::Relearn, 1, window);
    enterMode(Mode::Learning);
    phaseCount = 0;
    ++stats_.learnedRuns;
    recordSample(metrics);
    ++phaseCount;
}

void
ServicePredictor::recordSample(const ServiceMetrics &metrics)
{
    bool fresh = backend_->learn(metrics);
    if (fresh && cClustersCreated_)
        cClustersCreated_->inc();
    if (gClusters_)
        gClusters_->set(
            static_cast<double>(backend_->numUnits()));
}

bool
ServicePredictor::warmupStable() const
{
    std::uint64_t w = params.stabilityWindow;
    if (w == 0)
        return true;
    // Too few samples to assess drift: do not extend the warm-up
    // beyond the configured minimum.
    if (warmupCpi.size() < 2 * w)
        return true;
    double recent = 0.0;
    double prior = 0.0;
    std::size_t n = warmupCpi.size();
    for (std::size_t i = n - w; i < n; ++i)
        recent += warmupCpi[i];
    for (std::size_t i = n - 2 * w; i < n - w; ++i)
        prior += warmupCpi[i];
    if (prior <= 0.0)
        return true;
    return std::fabs(recent - prior) / prior <
           params.stabilityTolerance;
}

bool
ServicePredictor::decideDetail()
{
    if (mode_ != Mode::Predicting) {
        if (cDecideDetail_)
            cDecideDetail_->inc();
        return true;
    }
    if (auditBurstLeft == 0 && params.auditEvery &&
        ++sinceAudit >= params.auditEvery) {
        // Audit due: schedule a burst of auditWarmup re-warm runs
        // followed by the audited invocation itself, so the audit
        // measures warm-cache behaviour comparable to what the
        // clusters learned (see PredictorParams::auditWarmup).
        sinceAudit = 0;
        auditBurstLeft = params.auditWarmup + 1;
    }
    if (auditBurstLeft > 0) {
        --auditBurstLeft;
        if (auditBurstLeft == 0)
            auditPending = true;
        else
            auditWarming = true;
        if (cDecideDetail_)
            cDecideDetail_->inc();
        return true;
    }
    if (cDecideEmulate_)
        cDecideEmulate_->inc();
    return false;
}

void
ServicePredictor::recordDetailed(const ServiceMetrics &metrics)
{
    if (auditWarming && mode_ == Mode::Predicting) {
        // Sacrificial re-warm run before an audit: its whole point
        // is to absorb the cold-cache transient, so the sample is
        // discarded — folding it into a cluster would poison the
        // mean, and auditing it would report the very phantom
        // error the warm-up exists to remove.
        auditWarming = false;
        ++stats_.auditWarmupRuns;
        return;
    }
    auditWarming = false;
    if (auditPending && mode_ == Mode::Predicting) {
        // Audit sample: compare reality with what we would have
        // predicted for this signature.
        auditPending = false;
        ++stats_.audits;
        if (cAudits_)
            cAudits_->inc();
        // The lookup resolves the producing unit's index before
        // anything below can mutate the table, so ledger
        // attribution and the drift reset target stay pinned to
        // the unit that actually made the prediction.
        BackendLookup audit =
            backend_->lookup(metrics.signature());
        bool failed = true;
        bool ciDrift = false;
        ServiceMetrics predictedMetrics;
        if (audit.hasSource) {
            // Variance-aware check: a deviation only fails the
            // audit if it exceeds both the relative tolerance and
            // three standard deviations of the unit's own
            // historical spread — ordinary within-cluster noise
            // must not trigger drift resets.
            predictedMetrics = audit.metrics;
            predictedMetrics.insts = metrics.insts;
            double predicted =
                static_cast<double>(predictedMetrics.cycles);
            double actual = static_cast<double>(metrics.cycles);
            double spread = 3.0 * audit.cyclesSpread;
            double bound = std::max(
                params.auditTolerance * predicted, spread);
            failed = predicted > 0.0 &&
                     std::fabs(actual - predicted) > bound;
            if (params.auditCiMinSamples && actual > 0.0) {
                // Statistical drift test: the per-audit bound
                // above is 3-sigma-wide for a noisy cluster, so a
                // biased-but-noisy cluster can pass every single
                // audit while its *mean* error is statistically
                // unambiguous. Accumulate the signed relative
                // error per unit and trigger a reset when the
                // Student-t 95% CI on the mean lies entirely
                // outside the tolerance band.
                RunningStats &err = auditErr_[audit.unit];
                err.add((predicted - actual) / actual);
                if (err.count() >= params.auditCiMinSamples) {
                    double ci = obs::accuracyCi95(err);
                    double band = params.auditMeanTolerance;
                    ciDrift = err.mean() - ci > band ||
                              err.mean() + ci < -band;
                }
            }
        }
        if (telemetry_ && audit.hasSource) {
            // Route the full predicted-vs-actual comparison into
            // the accuracy ledger under the auditing unit's
            // identity (observational only).
            obs::AuditSample sample;
            sample.predictedCycles =
                static_cast<double>(predictedMetrics.cycles);
            sample.actualCycles =
                static_cast<double>(metrics.cycles);
            sample.predictedL2Misses = static_cast<double>(
                predictedMetrics.mem.l2Misses);
            sample.actualL2Misses =
                static_cast<double>(metrics.mem.l2Misses);
            sample.predictedIpc = predictedMetrics.ipc();
            sample.actualIpc = metrics.ipc();
            sample.failed = failed;
            telemetry_->accuracy.noteAudit(serviceIndex_,
                                           audit.unit, sample);
        }
        if (failed) {
            // Drift evidence: do NOT fold the sample into the
            // cluster (it would inflate the spread and drag the
            // mean just enough to mask further failures).
            ++stats_.auditFailures;
            if (cAuditFailures_)
                cAuditFailures_->inc();
            ++consecutiveAuditFailures;
            trace(obs::TraceEventKind::Audit, 0,
                  consecutiveAuditFailures);
            if (consecutiveAuditFailures >=
                    params.auditTriggerCount ||
                ciDrift)
                auditDriftReset(metrics, audit.unit);
            return;
        }
        trace(obs::TraceEventKind::Audit, 1, 0);
        consecutiveAuditFailures = 0;
        if (ciDrift) {
            // Every individual audit passed, but the accumulated
            // mean error is significant: the slow-drift case the
            // consecutive-failure trigger cannot see.
            auditDriftReset(metrics, audit.unit);
            return;
        }
        // A passing audit refreshes the matched cluster.
        ++stats_.learnedRuns;
        recordSample(metrics);
        return;
    }
    auditPending = false;

    switch (mode_) {
      case Mode::Warmup:
        ++stats_.warmupRuns;
        ++phaseCount;
        if (metrics.insts) {
            warmupCpi.push_back(
                static_cast<double>(metrics.cycles) /
                static_cast<double>(metrics.insts));
        }
        if (phaseCount >= params.warmupInvocations &&
            (warmupStable() ||
             phaseCount >= params.maxWarmupInvocations)) {
            enterMode(Mode::Learning);
            phaseCount = 0;
            warmupCpi.clear();
            warmupCpi.shrink_to_fit();
        }
        return;
      case Mode::Learning:
        ++stats_.learnedRuns;
        recordSample(metrics);
        ++phaseCount;
        if (phaseCount >= window) {
            enterMode(Mode::Predicting);
            phaseCount = 0;
        }
        return;
      case Mode::Predicting:
        // A detailed run while predicting (e.g. the controller was
        // overridden): still learn from it.
        ++stats_.learnedRuns;
        recordSample(metrics);
        return;
    }
    osp_panic("ServicePredictor: bad mode");
}

void
ServicePredictor::restoreTable(
    const std::vector<ClusterSnapshot> &snapshots)
{
    backend_->restore(snapshots);
    enterMode(snapshots.empty() ? Mode::Warmup : Mode::Predicting);
    phaseCount = 0;
    warmupCpi.clear();
    // A restored table is a new index epoch with no audit history:
    // every accumulator measured the *previous* table, and an
    // in-flight audit burst was scheduled against it too. Leaking
    // any of it would let a warm-started run inherit drift evidence
    // it never observed and spuriously drift-reset (or audit the
    // first restored invocation against a half-finished burst).
    sinceAudit = 0;
    auditBurstLeft = 0;
    auditPending = false;
    auditWarming = false;
    consecutiveAuditFailures = 0;
    auditErr_.clear();
    lastMatchedCluster_ = obs::accuracyNoCluster;
    if (gClusters_)
        gClusters_->set(
            static_cast<double>(backend_->numUnits()));
}

ServiceMetrics
ServicePredictor::predict(const Signature &signature,
                          std::uint64_t invocation_index,
                          bool *was_outlier)
{
    ++stats_.predictedRuns;
    if (cPredicted_)
        cPredicted_->inc();
    if (hPredictedInsts_)
        hPredictedInsts_->observe(signature.insts);

    // Prediction, unit identity and spread are all captured by the
    // lookup itself: nothing downstream (outlier bookkeeping,
    // re-learning transitions) can invalidate them.
    BackendLookup r = backend_->lookup(signature);
    bool outlier = !r.matched;
    if (was_outlier)
        *was_outlier = outlier;

    if (outlier) {
        ++stats_.outliers;
        if (cOutliers_)
            cOutliers_->inc();
        trace(obs::TraceEventKind::Outlier, signature.insts,
              backend_->numOutlierEntries());
        if (backend_->onOutlier(signature.insts,
                                invocation_index)) {
            // Re-learning period: another full window of detailed
            // simulation for this service.
            ++stats_.relearnEvents;
            if (cRelearn_)
                cRelearn_->inc();
            trace(obs::TraceEventKind::Relearn, 0, window);
            backend_->clearOutlierState();
            enterMode(Mode::Learning);
            phaseCount = 0;
        }
    } else {
        trace(obs::TraceEventKind::ClusterMatch, r.unit,
              signature.insts);
    }

    lastMatchedCluster_ = r.unit;

    ServiceMetrics prediction;
    if (r.hasSource)
        prediction = r.metrics;
    prediction.insts = signature.insts;
    if (telemetry_) {
        // Book the predicted-cycle mass under the producing cluster
        // so end-to-end error can be attributed back to it.
        telemetry_->accuracy.notePrediction(
            serviceIndex_, lastMatchedCluster_, prediction.cycles,
            outlier);
    }
    return prediction;
}

} // namespace osp
