#include "relearn.hh"

#include <algorithm>

#include "stats/student_t.hh"
#include "util/logging.hh"

namespace osp
{

const char *
relearnStrategyName(RelearnStrategy strategy)
{
    switch (strategy) {
      case RelearnStrategy::BestMatch: return "best-match";
      case RelearnStrategy::Eager: return "eager";
      case RelearnStrategy::Delayed: return "delayed";
      case RelearnStrategy::Statistical: return "statistical";
    }
    return "?";
}

namespace
{

/** Never re-learn; always live with the closest-cluster guess. */
class BestMatchPolicy : public RelearnPolicy
{
  public:
    bool
    onOutlier(PerfLookupTable &, InstCount, std::uint64_t) override
    {
        return false;
    }
};

/** Re-learn on every single outlier. */
class EagerPolicy : public RelearnPolicy
{
  public:
    bool
    onOutlier(PerfLookupTable &plt, InstCount signature,
              std::uint64_t invocation) override
    {
        plt.recordOutlier(signature, invocation);
        return true;
    }
};

/** Re-learn once one outlier cluster accumulates N occurrences. */
class DelayedPolicy : public RelearnPolicy
{
  public:
    explicit DelayedPolicy(std::uint64_t threshold)
        : threshold(threshold)
    {
    }

    bool
    onOutlier(PerfLookupTable &plt, InstCount signature,
              std::uint64_t invocation) override
    {
        OutlierEntry &entry =
            plt.recordOutlier(signature, invocation);
        return entry.matchCount >= threshold;
    }

  private:
    std::uint64_t threshold;
};

/**
 * The Statistical strategy: per outlier occurrence, compute an EPO
 * (occurrences of this outlier cluster within the last W invocations
 * of the service, divided by W), and once minEpos EPOs exist, test
 * whether the one-sided upper confidence bound B_y on the true
 * probability of occurrence reaches pMin (Eq. 8).
 */
class StatisticalPolicy : public RelearnPolicy
{
  public:
    explicit StatisticalPolicy(const RelearnParams &params)
        : params(params)
    {
    }

    bool
    onOutlier(PerfLookupTable &plt, InstCount signature,
              std::uint64_t invocation) override
    {
        OutlierEntry &entry =
            plt.recordOutlier(signature, invocation);

        // EPO: members of this outlier cluster within the moving
        // window (invocation - W, invocation].
        auto in_window = static_cast<double>(std::count_if(
            entry.occurredAt.begin(), entry.occurredAt.end(),
            [&](std::uint64_t at) {
                return at + params.movingWindow > invocation;
            }));
        entry.epos.push_back(
            in_window / static_cast<double>(params.movingWindow));

        if (entry.epos.size() <
            static_cast<std::size_t>(params.minEpos)) {
            return false;
        }
        double bound = epoUpperBound(entry.epos, params.alpha);
        // B_y < pMin: at least (1-alpha) confident the cluster is
        // rarer than pMin -> keep predicting. Otherwise re-learn.
        return bound >= params.pMin;
    }

  private:
    RelearnParams params;
};

} // namespace

std::unique_ptr<RelearnPolicy>
RelearnPolicy::make(const RelearnParams &params)
{
    switch (params.strategy) {
      case RelearnStrategy::BestMatch:
        return std::make_unique<BestMatchPolicy>();
      case RelearnStrategy::Eager:
        return std::make_unique<EagerPolicy>();
      case RelearnStrategy::Delayed:
        return std::make_unique<DelayedPolicy>(
            params.delayedThreshold);
      case RelearnStrategy::Statistical:
        return std::make_unique<StatisticalPolicy>(params);
    }
    osp_panic("RelearnPolicy::make: bad strategy");
}

} // namespace osp
