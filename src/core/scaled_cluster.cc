#include "scaled_cluster.hh"

#include <cmath>

#include "util/logging.hh"

namespace osp
{

ScaledCluster::ScaledCluster(const ServiceMetrics &first,
                             double range_frac, double ema_alpha)
    : rangeFrac(range_frac), emaAlpha(ema_alpha)
{
    if (range_frac <= 0.0 || range_frac >= 1.0)
        osp_fatal("ScaledCluster range fraction must be in (0,1)");
    if (ema_alpha < 0.0 || ema_alpha >= 1.0)
        osp_fatal("ScaledCluster EMA alpha must be in [0,1)");
    add(first);
}

ScaledCluster::ScaledCluster(const ClusterSnapshot &s,
                             double range_frac, double ema_alpha)
    : rangeFrac(range_frac), emaAlpha(ema_alpha)
{
    if (range_frac <= 0.0 || range_frac >= 1.0)
        osp_fatal("ScaledCluster range fraction must be in (0,1)");
    auto mk = [&](double mean, double m2 = 0.0) {
        return RunningStats::fromMoments(s.count, mean, m2, mean,
                                         mean);
    };
    insts_ = mk(s.instMean, s.instM2);
    cycles_ = mk(s.cyclesMean, s.cyclesM2);
    ipc_ = mk(s.ipcMean);
    l1iAcc = mk(s.l1iAccMean);
    l1iMiss = mk(s.l1iMissMean);
    l1dAcc = mk(s.l1dAccMean);
    l1dMiss = mk(s.l1dMissMean);
    l2Acc = mk(s.l2AccMean);
    l2Miss = mk(s.l2MissMean);
    centroid_ = s.instMean;
    ema[0] = s.cyclesMean;
    ema[1] = s.l1iAccMean;
    ema[2] = s.l1iMissMean;
    ema[3] = s.l1dAccMean;
    ema[4] = s.l1dMissMean;
    ema[5] = s.l2AccMean;
    ema[6] = s.l2MissMean;
}

ClusterSnapshot
ScaledCluster::snapshot() const
{
    ClusterSnapshot s;
    s.count = cycles_.count();
    s.instMean = insts_.mean();
    s.instM2 = insts_.variance() * static_cast<double>(s.count);
    s.cyclesMean = cycles_.mean();
    s.cyclesM2 = cycles_.variance() * static_cast<double>(s.count);
    s.ipcMean = ipc_.mean();
    s.l1iAccMean = l1iAcc.mean();
    s.l1iMissMean = l1iMiss.mean();
    s.l1dAccMean = l1dAcc.mean();
    s.l1dMissMean = l1dMiss.mean();
    s.l2AccMean = l2Acc.mean();
    s.l2MissMean = l2Miss.mean();
    return s;
}

void
ScaledCluster::add(const ServiceMetrics &m)
{
    bool first = (cycles_.count() == 0);
    insts_.add(static_cast<double>(m.insts));
    cycles_.add(static_cast<double>(m.cycles));
    ipc_.add(m.ipc());
    loads_.add(static_cast<double>(m.loads));
    stores_.add(static_cast<double>(m.stores));
    branches_.add(static_cast<double>(m.branches));
    l1iAcc.add(static_cast<double>(m.mem.l1iAccesses));
    l1iMiss.add(static_cast<double>(m.mem.l1iMisses));
    l1dAcc.add(static_cast<double>(m.mem.l1dAccesses));
    l1dMiss.add(static_cast<double>(m.mem.l1dMisses));
    l2Acc.add(static_cast<double>(m.mem.l2Accesses));
    l2Miss.add(static_cast<double>(m.mem.l2Misses));
    centroid_ = insts_.mean();

    const double values[7] = {
        static_cast<double>(m.cycles),
        static_cast<double>(m.mem.l1iAccesses),
        static_cast<double>(m.mem.l1iMisses),
        static_cast<double>(m.mem.l1dAccesses),
        static_cast<double>(m.mem.l1dMisses),
        static_cast<double>(m.mem.l2Accesses),
        static_cast<double>(m.mem.l2Misses),
    };
    if (first) {
        for (int i = 0; i < 7; ++i)
            ema[i] = values[i];
    } else {
        for (int i = 0; i < 7; ++i)
            ema[i] += emaAlpha * (values[i] - ema[i]);
    }
}

void
ScaledCluster::decayHistory(std::uint64_t max_count)
{
    insts_.clampWeight(max_count);
    cycles_.clampWeight(max_count);
    ipc_.clampWeight(max_count);
    loads_.clampWeight(max_count);
    stores_.clampWeight(max_count);
    branches_.clampWeight(max_count);
    l1iAcc.clampWeight(max_count);
    l1iMiss.clampWeight(max_count);
    l1dAcc.clampWeight(max_count);
    l1dMiss.clampWeight(max_count);
    l2Acc.clampWeight(max_count);
    l2Miss.clampWeight(max_count);
}

bool
ScaledCluster::matches(InstCount insts) const
{
    auto x = static_cast<double>(insts);
    return x >= rangeLo() && x <= rangeHi();
}

double
ScaledCluster::distance(InstCount insts) const
{
    return std::fabs(static_cast<double>(insts) - centroid_);
}

bool
ScaledCluster::matchesMix(const Signature &sig) const
{
    auto dim_ok = [&](const RunningStats &stats, std::uint64_t v) {
        double mean = stats.mean();
        if (mean < 32.0)
            return true;  // too small to be discriminative
        auto x = static_cast<double>(v);
        return x >= mean * (1.0 - rangeFrac) &&
               x <= mean * (1.0 + rangeFrac);
    };
    return dim_ok(loads_, sig.loads) &&
           dim_ok(stores_, sig.stores) &&
           dim_ok(branches_, sig.branches);
}

namespace
{

std::uint64_t
roundStat(double x)
{
    return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

} // namespace

ServiceMetrics
ScaledCluster::predict() const
{
    ServiceMetrics m;
    m.insts = roundStat(insts_.mean());
    if (emaAlpha > 0.0) {
        m.cycles = roundStat(ema[0]);
        m.mem.l1iAccesses = roundStat(ema[1]);
        m.mem.l1iMisses = roundStat(ema[2]);
        m.mem.l1dAccesses = roundStat(ema[3]);
        m.mem.l1dMisses = roundStat(ema[4]);
        m.mem.l2Accesses = roundStat(ema[5]);
        m.mem.l2Misses = roundStat(ema[6]);
    } else {
        m.cycles = roundStat(cycles_.mean());
        m.mem.l1iAccesses = roundStat(l1iAcc.mean());
        m.mem.l1iMisses = roundStat(l1iMiss.mean());
        m.mem.l1dAccesses = roundStat(l1dAcc.mean());
        m.mem.l1dMisses = roundStat(l1dMiss.mean());
        m.mem.l2Accesses = roundStat(l2Acc.mean());
        m.mem.l2Misses = roundStat(l2Miss.mean());
    }
    return m;
}

} // namespace osp
