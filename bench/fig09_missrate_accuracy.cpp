/**
 * @file
 * Figure 9: L1I / L1D / L2 miss rates from full-system simulation
 * versus the accelerated simulation's (measured + predicted) rates.
 *
 * The paper reports the difference is 1 point or less, except L2 in
 * find-od at 1.4 points.
 */

#include <algorithm>
#include <cmath>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Figure 9",
           "cache miss rates: full-system vs accelerated "
           "(measured+predicted)");

    TablePrinter table({"bench", "l1i_full", "l1i_pred", "l1d_full",
                        "l1d_pred", "l2_full", "l2_pred",
                        "worst_diff"});

    auto rate = [](std::uint64_t m, std::uint64_t a) {
        return a ? static_cast<double>(m) / static_cast<double>(a)
                 : 0.0;
    };

    for (const auto &name : osIntensiveWorkloads()) {
        MachineConfig cfg = paperConfig();
        RunTotals full = runFull(name, cfg, accuracyScale);
        AccelResult pred =
            runAccelerated(name, cfg, accuracyScale);

        auto f = full.combinedMem();
        auto p = pred.totals.combinedMem();
        double l1i_f = rate(f.l1iMisses, f.l1iAccesses);
        double l1i_p = rate(p.l1iMisses, p.l1iAccesses);
        double l1d_f = rate(f.l1dMisses, f.l1dAccesses);
        double l1d_p = rate(p.l1dMisses, p.l1dAccesses);
        double l2_f = rate(f.l2Misses, f.l2Accesses);
        double l2_p = rate(p.l2Misses, p.l2Accesses);
        double worst = std::max(
            {std::fabs(l1i_f - l1i_p), std::fabs(l1d_f - l1d_p),
             std::fabs(l2_f - l2_p)});

        table.addRow({name, TablePrinter::pct(l1i_f, 2),
                      TablePrinter::pct(l1i_p, 2),
                      TablePrinter::pct(l1d_f, 2),
                      TablePrinter::pct(l1d_p, 2),
                      TablePrinter::pct(l2_f, 2),
                      TablePrinter::pct(l2_p, 2),
                      TablePrinter::pct(worst, 2)});
    }
    table.print(std::cout);

    paperNote(
        "predicted and fully-simulated miss rates differ by <=1 "
        "point, except find-od's L2 at 1.4 points (improved to 1.2 "
        "by delaying learning start from 5 to 25).");
    return 0;
}
