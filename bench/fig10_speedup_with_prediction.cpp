/**
 * @file
 * Figure 10: the Figure 2 experiment (1MB-over-512KB L2 speedup)
 * repeated with the accelerated simulation added: App-Only vs
 * App+OS vs App+OS Pred.
 *
 * The point: the accelerated simulation preserves *relative*
 * performance conclusions — it sees the cache-size speedups that
 * application-only simulation misses.
 *
 * Executes through the parallel sweep runner: 30 cells (5
 * workloads x 3 modes x 2 L2 sizes) run concurrently; the speedup
 * ratios are formed from the aggregated result set.
 */

#include <cmath>

#include "common.hh"
#include "driver/experiments.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Figure 10",
           "speedup of 1MB over 512KB L2: App-Only vs App+OS vs "
           "App+OS Pred");

    SweepSpec spec = fig10Sweep(smokeFactor());
    spec.smoke = smokeMode();
    RunnerOptions opts;
    opts.threads = threadArg(argc, argv);
    SweepResult sweep = runSweep(spec, opts);

    constexpr std::uint64_t small_l2 = 512 * 1024;
    constexpr std::uint64_t large_l2 = 1024 * 1024;

    TablePrinter table(
        {"bench", "app_only", "app_os", "app_os_pred"});

    auto cycles = [&](const std::string &name, RunMode mode,
                      std::uint64_t l2) {
        return static_cast<double>(
            sweep.find(name, mode, 0, l2)->totals.totalCycles());
    };

    double gm_full = 1.0;
    double gm_pred = 1.0;
    int count = 0;
    for (const auto &name : spec.workloads) {
        double app_speedup =
            cycles(name, RunMode::AppOnly, small_l2) /
            cycles(name, RunMode::AppOnly, large_l2);
        double full_speedup =
            cycles(name, RunMode::Full, small_l2) /
            cycles(name, RunMode::Full, large_l2);
        double pred_speedup =
            cycles(name, RunMode::Accelerated, small_l2) /
            cycles(name, RunMode::Accelerated, large_l2);
        gm_full *= full_speedup;
        gm_pred *= pred_speedup;
        ++count;

        table.addRow({name, TablePrinter::fmt(app_speedup, 3),
                      TablePrinter::fmt(full_speedup, 3),
                      TablePrinter::fmt(pred_speedup, 3)});
    }
    table.print(std::cout);
    std::cout << "\ngeomean App+OS "
              << TablePrinter::fmt(std::pow(gm_full, 1.0 / count),
                                   3)
              << " vs App+OS Pred "
              << TablePrinter::fmt(std::pow(gm_pred, 1.0 / count),
                                   3)
              << "\n";

    std::cout << "\nsweep: " << sweep.cells.size() << " cells in "
              << TablePrinter::fmt(sweep.wallSeconds, 2) << " s on "
              << sweep.threads << " thread(s)\n";

    paperNote(
        "the App+OS Pred bars track the App+OS bars closely while "
        "App-Only misses the speedups entirely (paper Fig. 10: "
        "pred bar within a few percent of full, e.g. 2.16 vs 2.03 "
        "for iperf).");
    return 0;
}
