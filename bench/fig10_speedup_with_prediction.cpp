/**
 * @file
 * Figure 10: the Figure 2 experiment (1MB-over-512KB L2 speedup)
 * repeated with the accelerated simulation added: App-Only vs
 * App+OS vs App+OS Pred.
 *
 * The point: the accelerated simulation preserves *relative*
 * performance conclusions — it sees the cache-size speedups that
 * application-only simulation misses.
 */

#include <cmath>

#include "common.hh"

int
main()
{
    using namespace osp;
    using namespace osp::bench;

    banner("Figure 10",
           "speedup of 1MB over 512KB L2: App-Only vs App+OS vs "
           "App+OS Pred");

    TablePrinter table(
        {"bench", "app_only", "app_os", "app_os_pred"});

    double gm_full = 1.0;
    double gm_pred = 1.0;
    int count = 0;
    for (const auto &name : osIntensiveWorkloads()) {
        RunTotals app_s =
            runAppOnly(name, paperConfig(512 * 1024), shapeScale);
        RunTotals app_l =
            runAppOnly(name, paperConfig(1024 * 1024), shapeScale);
        RunTotals full_s =
            runFull(name, paperConfig(512 * 1024), shapeScale);
        RunTotals full_l =
            runFull(name, paperConfig(1024 * 1024), shapeScale);
        AccelResult pred_s = runAccelerated(
            name, paperConfig(512 * 1024), shapeScale);
        AccelResult pred_l = runAccelerated(
            name, paperConfig(1024 * 1024), shapeScale);

        double app_speedup =
            static_cast<double>(app_s.totalCycles()) /
            static_cast<double>(app_l.totalCycles());
        double full_speedup =
            static_cast<double>(full_s.totalCycles()) /
            static_cast<double>(full_l.totalCycles());
        double pred_speedup =
            static_cast<double>(pred_s.totals.totalCycles()) /
            static_cast<double>(pred_l.totals.totalCycles());
        gm_full *= full_speedup;
        gm_pred *= pred_speedup;
        ++count;

        table.addRow({name, TablePrinter::fmt(app_speedup, 3),
                      TablePrinter::fmt(full_speedup, 3),
                      TablePrinter::fmt(pred_speedup, 3)});
    }
    table.print(std::cout);
    std::cout << "\ngeomean App+OS "
              << TablePrinter::fmt(std::pow(gm_full, 1.0 / count),
                                   3)
              << " vs App+OS Pred "
              << TablePrinter::fmt(std::pow(gm_pred, 1.0 / count),
                                   3)
              << "\n";

    paperNote(
        "the App+OS Pred bars track the App+OS bars closely while "
        "App-Only misses the speedups entirely (paper Fig. 10: "
        "pred bar within a few percent of full, e.g. 2.16 vs 2.03 "
        "for iperf).");
    return 0;
}
