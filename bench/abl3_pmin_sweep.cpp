/**
 * @file
 * Ablation 3: minimum-probability-of-occurrence / degree-of-
 * confidence sweep (the Sec. 4.3 knobs behind the learning window).
 *
 * Smaller p_min or higher DoC lengthen the initial learning window
 * (Fig. 7), capturing rarer behaviour points at the cost of
 * coverage.
 */

#include "common.hh"

#include "stats/learning_window.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Ablation 3",
           "p_min / DoC sweep: derived window, coverage, error "
           "(paper: p_min 3%, DoC 95%)");

    struct Point
    {
        double pmin;
        double doc;
    };
    const Point points[] = {
        {0.10, 0.95}, {0.05, 0.95}, {0.03, 0.95},
        {0.01, 0.95}, {0.03, 0.99},
    };

    TablePrinter table({"bench", "p_min", "doc", "window",
                        "coverage", "time_err"});
    for (const auto &name : {std::string("ab-rand"),
                             std::string("ab-seq"),
                             std::string("iperf")}) {
        MachineConfig cfg = paperConfig();
        RunTotals full = runFull(name, cfg, shapeScale);
        for (const Point &pt : points) {
            PredictorParams pp = paperPredictor();
            pp.learningWindow = 0;  // derive from (pmin, doc)
            pp.pMin = pt.pmin;
            pp.doc = pt.doc;
            pp.relearn.pMin = pt.pmin;
            AccelResult res =
                runAccelerated(name, cfg, shapeScale, pp);
            double err = absError(
                static_cast<double>(res.totals.totalCycles()),
                static_cast<double>(full.totalCycles()));
            table.addRow(
                {name, TablePrinter::pct(pt.pmin, 0),
                 TablePrinter::pct(pt.doc, 0),
                 std::to_string(
                     learningWindowSize(pt.pmin, pt.doc)),
                 TablePrinter::pct(res.totals.coverage()),
                 TablePrinter::pct(err)});
        }
    }
    table.print(std::cout);

    paperNote(
        "longer windows (small p_min, high DoC) buy accuracy with "
        "coverage; the paper found 3%/95% (window 100) sufficient "
        "for high accuracy.");
    return 0;
}
