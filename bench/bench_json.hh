/**
 * @file
 * "ospredict-bench-v1": the hot-path performance artifact shared by
 * microbench_components and sweep.
 *
 * Both binaries merge their metrics into one file (typically
 * BENCH_hotpath.json) so CI gets a single machine-readable document
 * per run:
 *
 *   {
 *     "schema": "ospredict-bench-v1",
 *     "smoke": true,
 *     "metrics": {
 *       "emulate_block_mips": {"unit": "mips", "value": ...},
 *       ...
 *     }
 *   }
 *
 * The document is deterministic in *schema* (keys sorted, fixed
 * shape), not in values — wall-clock numbers vary by machine, which
 * is why tools/check_perf_baseline.py gates mode *ratios* rather
 * than absolute throughput.
 */

#ifndef OSP_BENCH_BENCH_JSON_HH
#define OSP_BENCH_BENCH_JSON_HH

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hh"

namespace osp::bench
{

inline constexpr const char *benchJsonSchema = "ospredict-bench-v1";

/** One measured quantity. */
struct BenchMetric
{
    std::string name;
    double value = 0.0;
    std::string unit;
};

/**
 * Merge @p metrics into the bench document at @p path, creating it
 * when absent. An existing document contributes its metrics first
 * (so two binaries can each write their half); same-name metrics are
 * overwritten. Keys are emitted sorted. Returns false (with a
 * message on stderr) when the file cannot be read back or written.
 */
inline bool
mergeBenchJson(const std::string &path, bool smoke,
               const std::vector<BenchMetric> &metrics)
{
    std::map<std::string, std::pair<double, std::string>> merged;

    if (std::ifstream is(path); is) {
        std::ostringstream text;
        text << is.rdbuf();
        bool ok = false;
        std::string err;
        JsonValue doc = JsonValue::parse(text.str(), &ok, &err);
        if (!ok) {
            std::cerr << "bench-json: existing " << path
                      << " is not valid JSON (" << err
                      << "); refusing to overwrite\n";
            return false;
        }
        const JsonValue *schema = doc.find("schema");
        if (!schema || !schema->isString() ||
            schema->asString() != benchJsonSchema) {
            std::cerr << "bench-json: existing " << path
                      << " has a different schema; refusing to "
                         "overwrite\n";
            return false;
        }
        if (const JsonValue *old = doc.find("metrics")) {
            for (const auto &[name, metric] : old->members()) {
                const JsonValue *v = metric.find("value");
                const JsonValue *u = metric.find("unit");
                if (v && v->isNumber()) {
                    merged[name] = {v->asDouble(),
                                    u && u->isString()
                                        ? u->asString()
                                        : std::string()};
                }
            }
        }
    }

    for (const BenchMetric &m : metrics)
        merged[m.name] = {m.value, m.unit};

    JsonValue doc = JsonValue::object();
    doc.add("schema", benchJsonSchema);
    doc.add("smoke", smoke);
    JsonValue obj = JsonValue::object();
    for (const auto &[name, metric] : merged) {
        JsonValue entry = JsonValue::object();
        entry.add("unit", metric.second);
        entry.add("value", metric.first);
        obj.add(name, std::move(entry));
    }
    doc.add("metrics", std::move(obj));

    std::ofstream os(path);
    if (!os) {
        std::cerr << "bench-json: cannot write " << path << "\n";
        return false;
    }
    doc.write(os, 2);
    os << "\n";
    return static_cast<bool>(os);
}

} // namespace osp::bench

#endif // OSP_BENCH_BENCH_JSON_HH
