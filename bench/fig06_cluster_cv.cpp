/**
 * @file
 * Figure 6: coefficient of variation of per-service execution time
 * and IPC, treating each service as one big cluster (non-clustered)
 * versus grouping instances with the Sec. 4.2 scaled clusters.
 *
 * The paper: execution-time CV drops 4.7x on average (0.72 -> 0.15)
 * and IPC CV drops 0.13 -> 0.08.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Figure 6",
           "per-service CV, non-clustered vs scaled clusters "
           "(occurrence-weighted average over services)");

    TablePrinter table({"bench", "cv_time_nonclust",
                        "cv_time_clustered", "cv_ipc_nonclust",
                        "cv_ipc_clustered"});

    RunningStats avg_time_non;
    RunningStats avg_time_clu;
    RunningStats avg_ipc_non;
    RunningStats avg_ipc_clu;

    for (const auto &name : osIntensiveWorkloads()) {
        MachineConfig cfg = paperConfig();
        cfg.recordIntervals = true;
        auto machine = makeMachine(name, cfg, scaled(shapeScale));
        machine->run();
        // Skip each service's cold-start transient (the predictor's
        // delayed learning start does the same, Sec. 4.4).
        auto summary = summarizeCv(
            characterizeServices(machine->intervals(), 0.05, 100));

        table.addRow({name,
                      TablePrinter::fmt(summary.cvCycles, 3),
                      TablePrinter::fmt(summary.clusteredCvCycles,
                                        3),
                      TablePrinter::fmt(summary.cvIpc, 3),
                      TablePrinter::fmt(summary.clusteredCvIpc,
                                        3)});
        avg_time_non.add(summary.cvCycles);
        avg_time_clu.add(summary.clusteredCvCycles);
        avg_ipc_non.add(summary.cvIpc);
        avg_ipc_clu.add(summary.clusteredCvIpc);
    }

    table.addRow({"average",
                  TablePrinter::fmt(avg_time_non.mean(), 3),
                  TablePrinter::fmt(avg_time_clu.mean(), 3),
                  TablePrinter::fmt(avg_ipc_non.mean(), 3),
                  TablePrinter::fmt(avg_ipc_clu.mean(), 3)});
    table.print(std::cout);

    double drop = avg_time_clu.mean() > 0.0
                      ? avg_time_non.mean() / avg_time_clu.mean()
                      : 0.0;
    std::cout << "\nexecution-time CV reduction: "
              << TablePrinter::fmt(drop, 2) << "x\n";

    paperNote(
        "average execution-time CV 0.72 -> 0.15 (4.7x reduction); "
        "IPC CV 0.13 -> 0.08.");
    return 0;
}
