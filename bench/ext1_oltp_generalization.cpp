/**
 * @file
 * Extension experiment 1: does the technique generalize to a
 * transaction-processing workload?
 *
 * The paper's introduction motivates full-system simulation with
 * "web servers, system tools, network processing, and transaction
 * processing", but its evaluation covers only the first three. The
 * oltp workload (see src/workload/oltp.hh) supplies the fourth; the
 * predictor runs with the same defaults calibrated on the paper's
 * five benchmarks — an out-of-sample test of the method.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Extension 1",
           "generalization to transaction processing (oltp)");

    MachineConfig cfg = paperConfig();
    RunTotals full = runFull("oltp", cfg, accuracyScale);
    RunTotals app = runAppOnly("oltp", cfg, accuracyScale);
    AccelResult pred = runAccelerated("oltp", cfg, accuracyScale);

    TablePrinter table({"metric", "value"});
    table.addRow({"total instructions",
                  std::to_string(full.totalInsts())});
    table.addRow({"OS instruction fraction",
                  TablePrinter::pct(full.osInstFraction())});
    table.addRow({"OS invocations",
                  std::to_string(full.osInvocations)});
    table.addRow(
        {"app-only exec-time ratio",
         TablePrinter::fmt(
             static_cast<double>(full.totalCycles()) /
                 static_cast<double>(app.totalCycles()),
             1) +
             "x"});
    table.addRow({"prediction coverage",
                  TablePrinter::pct(pred.totals.coverage())});
    table.addRow(
        {"exec-time error",
         TablePrinter::pct(absError(
             static_cast<double>(pred.totals.totalCycles()),
             static_cast<double>(full.totalCycles())))});
    table.addRow(
        {"IPC error", TablePrinter::pct(absError(
                          pred.totals.ipc(), full.ipc()))});
    table.addRow(
        {"estimated speedup (Eq. 10)",
         TablePrinter::fmt(estimatedSpeedup(pred.totals), 2) +
             "x"});
    table.print(std::cout);

    std::cout << "\nper-service coverage:\n";
    TablePrinter per({"service", "invocations", "predicted"});
    for (int s = 0; s < numServiceTypes; ++s) {
        const auto &svc = pred.totals.perService[s];
        if (!svc.invocations)
            continue;
        per.addRow({serviceName(static_cast<ServiceType>(s)),
                    std::to_string(svc.invocations),
                    std::to_string(svc.predicted)});
    }
    per.print(std::cout);

    paperNote(
        "no paper counterpart — the out-of-sample check: accuracy "
        "and coverage should land in the same band as the paper's "
        "five OS-intensive benchmarks without retuning.");
    return 0;
}
