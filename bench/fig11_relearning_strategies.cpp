/**
 * @file
 * Figure 11: prediction coverage (a) and absolute execution-time
 * error (b) of the four re-learning strategies.
 *
 * The paper: Best-Match covers 93% but errs 9.6% on average (29%
 * worst); Eager errs only 1.5% but covers 74%; Statistical (89% /
 * 3.2%) and Delayed (88% / 2.7%) balance both.
 *
 * Executes through the parallel sweep runner: 30 cells (5
 * workloads x (1 baseline + 5 predictor variants)). Columns 0-3
 * isolate the paper's strategy axis with audit sampling (this
 * repo's drift extension) disabled; column 4 is the repository
 * default, Statistical + audits. Variant definitions live in
 * driver/experiments.cc (fig11Sweep).
 */

#include "common.hh"
#include "driver/experiments.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Figure 11",
           "coverage and absolute error of the re-learning "
           "strategies (Best-Match / Statistical / Delayed / "
           "Eager)");

    SweepSpec spec = fig11Sweep(smokeFactor());
    spec.smoke = smokeMode();
    RunnerOptions opts;
    opts.threads = threadArg(argc, argv);
    SweepResult sweep = runSweep(spec, opts);

    std::vector<std::string> header = {"bench"};
    for (const auto &variant : spec.predictors)
        header.push_back(variant.label);
    TablePrinter cov(header);
    TablePrinter err(header);

    const std::size_t num_variants = spec.predictors.size();
    std::vector<RunningStats> cov_avg(num_variants);
    std::vector<RunningStats> err_avg(num_variants);

    for (const auto &name : spec.workloads) {
        std::vector<std::string> cov_row = {name};
        std::vector<std::string> err_row = {name};
        for (std::size_t v = 0; v < num_variants; ++v) {
            const CellResult &res =
                *sweep.find(name, RunMode::Accelerated, v);
            double coverage = res.totals.coverage();
            cov_row.push_back(TablePrinter::pct(coverage));
            err_row.push_back(TablePrinter::pct(res.cycleError));
            cov_avg[v].add(coverage);
            err_avg[v].add(res.cycleError);
        }
        cov.addRow(cov_row);
        err.addRow(err_row);
    }

    std::vector<std::string> cov_last = {"average"};
    std::vector<std::string> err_last = {"average"};
    for (std::size_t v = 0; v < num_variants; ++v) {
        cov_last.push_back(TablePrinter::pct(cov_avg[v].mean()));
        err_last.push_back(TablePrinter::pct(err_avg[v].mean()));
    }
    cov.addRow(cov_last);
    err.addRow(err_last);

    std::cout << "(a) coverage\n";
    cov.print(std::cout);
    std::cout << "\n(b) absolute execution-time error\n";
    err.print(std::cout);

    std::cout << "\nsweep: " << sweep.cells.size() << " cells in "
              << TablePrinter::fmt(sweep.wallSeconds, 2) << " s on "
              << sweep.threads << " thread(s)\n";

    paperNote(
        "coverage 93/89/88/74% and error 9.6/3.2/2.7/1.5% for "
        "Best-Match/Statistical/Delayed/Eager: Statistical and "
        "Delayed approach Eager's accuracy at near-Best-Match "
        "coverage.");
    return 0;
}
