/**
 * @file
 * Figure 11: prediction coverage (a) and absolute execution-time
 * error (b) of the four re-learning strategies.
 *
 * The paper: Best-Match covers 93% but errs 9.6% on average (29%
 * worst); Eager errs only 1.5% but covers 74%; Statistical (89% /
 * 3.2%) and Delayed (88% / 2.7%) balance both.
 */

#include "common.hh"

int
main()
{
    using namespace osp;
    using namespace osp::bench;

    banner("Figure 11",
           "coverage and absolute error of the re-learning "
           "strategies (Best-Match / Statistical / Delayed / "
           "Eager)");

    const RelearnStrategy strategies[] = {
        RelearnStrategy::BestMatch,
        RelearnStrategy::Statistical,
        RelearnStrategy::Delayed,
        RelearnStrategy::Eager,
    };

    TablePrinter cov({"bench", "best-match", "statistical",
                      "delayed", "eager", "stat+audit"});
    TablePrinter err({"bench", "best-match", "statistical",
                      "delayed", "eager", "stat+audit"});

    RunningStats cov_avg[5];
    RunningStats err_avg[5];

    for (const auto &name : osIntensiveWorkloads()) {
        MachineConfig cfg = paperConfig();
        RunTotals full = runFull(name, cfg, accuracyScale);

        std::vector<std::string> cov_row = {name};
        std::vector<std::string> err_row = {name};
        for (int s = 0; s < 5; ++s) {
            // Columns 0-3 isolate the paper's strategy axis: audit
            // sampling (this repo's drift extension) is disabled so
            // it cannot blur the strategies' differences. Column 4
            // is the repository default, Statistical + audits.
            PredictorParams pp =
                paperPredictor(strategies[s < 4 ? s : 1]);
            pp.auditEvery = (s == 4) ? pp.auditEvery : 0;
            AccelResult res =
                runAccelerated(name, cfg, accuracyScale, pp);
            double coverage = res.totals.coverage();
            double error = absError(
                static_cast<double>(res.totals.totalCycles()),
                static_cast<double>(full.totalCycles()));
            cov_row.push_back(TablePrinter::pct(coverage));
            err_row.push_back(TablePrinter::pct(error));
            cov_avg[s].add(coverage);
            err_avg[s].add(error);
        }
        cov.addRow(cov_row);
        err.addRow(err_row);
    }

    std::vector<std::string> cov_last = {"average"};
    std::vector<std::string> err_last = {"average"};
    for (int s = 0; s < 5; ++s) {
        cov_last.push_back(TablePrinter::pct(cov_avg[s].mean()));
        err_last.push_back(TablePrinter::pct(err_avg[s].mean()));
    }
    cov.addRow(cov_last);
    err.addRow(err_last);

    std::cout << "(a) coverage\n";
    cov.print(std::cout);
    std::cout << "\n(b) absolute execution-time error\n";
    err.print(std::cout);

    paperNote(
        "coverage 93/89/88/74% and error 9.6/3.2/2.7/1.5% for "
        "Best-Match/Statistical/Delayed/Eager: Statistical and "
        "Delayed approach Eager's accuracy at near-Best-Match "
        "coverage.");
    return 0;
}
