/**
 * @file
 * Ablation 4: cache-pollution models for predicted OS intervals,
 * plus branch-predictor warming.
 *
 * The paper's Sec. 4.5 model invalidates predicted-miss-count
 * application lines in random sets. On an OS-dominated substrate
 * that saturates (every set soon holds an invalid line) and ignores
 * kernel-on-kernel displacement, so this repository adds synthetic
 * installation and footprint-faithful installation (DESIGN.md).
 * This bench quantifies each step, and the effect of replaying
 * emulated branches into the shared predictor.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Ablation 4",
           "pollution policies and BP warming for predicted "
           "intervals");

    const PollutionPolicy policies[] = {
        PollutionPolicy::None,
        PollutionPolicy::PaperInvalidateApp,
        PollutionPolicy::InvalidateAny,
        PollutionPolicy::SyntheticInstall,
        PollutionPolicy::Footprint,
    };

    TablePrinter table({"bench", "policy", "bp_warming",
                        "time_err"});
    for (const auto &name : osIntensiveWorkloads()) {
        MachineConfig cfg = paperConfig();
        RunTotals full = runFull(name, cfg, shapeScale);
        for (PollutionPolicy policy : policies) {
            MachineConfig c = cfg;
            c.pollutionPolicy = policy;
            AccelResult res =
                runAccelerated(name, c, shapeScale);
            double err = absError(
                static_cast<double>(res.totals.totalCycles()),
                static_cast<double>(full.totalCycles()));
            table.addRow({name, pollutionPolicyName(policy), "on",
                          TablePrinter::pct(err)});
        }
        // Footprint with BP warming disabled.
        MachineConfig c = cfg;
        c.bpWarming = false;
        AccelResult res = runAccelerated(name, c, shapeScale);
        double err = absError(
            static_cast<double>(res.totals.totalCycles()),
            static_cast<double>(full.totalCycles()));
        table.addRow({name, "footprint", "off",
                      TablePrinter::pct(err)});
    }
    table.print(std::cout);

    paperNote(
        "the paper's app-only invalidation suffices on its "
        "app-centric caches; with 67-99% kernel instructions, "
        "modelling the skipped service's own footprint (install/"
        "footprint) and its branch-history pollution is what "
        "recovers the 3%-level accuracy.");
    return 0;
}
