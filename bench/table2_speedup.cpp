/**
 * @file
 * Table 2: estimated simulation speedup per benchmark via Eq. 10,
 *
 *     speedup = N / (X / R + (N - X))
 *
 * where N is total instructions, X the instructions fast-forwarded
 * in prediction periods, and R the detailed-over-emulation slowdown
 * ratio. The paper uses its measured R = 133 and reports 2.8x-15.6x
 * with a 4.9x geometric mean. We report Eq. 10 under the paper's
 * R = 133, under our own measured R, and the directly measured
 * wall-clock speedup (our simulator can actually switch modes).
 *
 * The full/accelerated pairs execute through the parallel sweep
 * runner; per-cell wall clocks come from the runner's own timers.
 * When cells run concurrently they contend for cores, which adds
 * noise to the per-cell wall column (the full/fast *ratio* is
 * robust because both cells see the same contention regime); run
 * with `--threads 1` for the cleanest timing numbers. The R
 * calibration stays serial — it is a timing micro-measurement.
 */

#include <chrono>
#include <cmath>
#include <functional>

#include "common.hh"
#include "driver/experiments.hh"

namespace
{

double
wallSeconds(const std::function<void()> &fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Table 2", "estimated and measured simulation speedups");

    // Measure our own detailed/emulation per-instruction ratio once
    // (the R of Eq. 10), like the paper derived 133x from Table 1.
    double measured_ratio;
    {
        MachineConfig cfg = paperConfig();
        cfg.level = DetailLevel::Emulate;
        auto emu = makeMachine("ab-rand", cfg, scaled(1.0));
        double t_emu = wallSeconds([&] { emu->run(); });
        cfg.level = DetailLevel::OooCache;
        auto det = makeMachine("ab-rand", cfg, scaled(1.0));
        double t_det = wallSeconds([&] { det->run(); });
        measured_ratio = t_det / t_emu;
    }

    SweepSpec spec = table2Sweep(smokeFactor());
    spec.smoke = smokeMode();
    RunnerOptions opts;
    opts.threads = threadArg(argc, argv);
    SweepResult sweep = runSweep(spec, opts);

    TablePrinter table({"bench", "coverage", "pred_inst_frac",
                        "est_speedup_R133", "est_speedup_Rmeas",
                        "measured_wall"});

    double gm133 = 1.0;
    double gmeas = 1.0;
    double gwall = 1.0;
    int count = 0;

    for (const auto &name : spec.workloads) {
        const CellResult &full =
            *sweep.find(name, RunMode::Full);
        const CellResult &fast =
            *sweep.find(name, RunMode::Accelerated);
        const RunTotals &t = fast.totals;

        double frac = static_cast<double>(t.osPredInsts) /
                      static_cast<double>(t.totalInsts());
        double est133 = fast.estSpeedupR133;
        double estm = estimatedSpeedup(t, measured_ratio);
        double wall = full.wallSeconds / fast.wallSeconds;
        gm133 *= est133;
        gmeas *= estm;
        gwall *= wall;
        ++count;

        table.addRow({name, TablePrinter::pct(t.coverage()),
                      TablePrinter::pct(frac),
                      TablePrinter::fmt(est133, 2) + "x",
                      TablePrinter::fmt(estm, 2) + "x",
                      TablePrinter::fmt(wall, 2) + "x"});
    }
    table.addRow({"gmean", "", "",
                  TablePrinter::fmt(std::pow(gm133, 1.0 / count),
                                    2) +
                      "x",
                  TablePrinter::fmt(std::pow(gmeas, 1.0 / count),
                                    2) +
                      "x",
                  TablePrinter::fmt(std::pow(gwall, 1.0 / count),
                                    2) +
                      "x"});
    table.print(std::cout);

    std::cout << "\nmeasured detailed/emulation ratio R = "
              << TablePrinter::fmt(measured_ratio, 2) << "x\n";

    std::cout << "\nsweep: " << sweep.cells.size() << " cells in "
              << TablePrinter::fmt(sweep.wallSeconds, 2) << " s on "
              << sweep.threads << " thread(s)\n";

    paperNote(
        "Eq. 10 with R=133 gives 2.8x (ab-rand) to 15.6x (iperf), "
        "geometric mean 4.9x. Simics could not switch modes "
        "dynamically, so the paper's speedups are estimates; ours "
        "can, so the measured-wall column is a real end-to-end "
        "speedup (bounded by our smaller R).");
    return 0;
}
