/**
 * @file
 * Table 2: estimated simulation speedup per benchmark via Eq. 10,
 *
 *     speedup = N / (X / R + (N - X))
 *
 * where N is total instructions, X the instructions fast-forwarded
 * in prediction periods, and R the detailed-over-emulation slowdown
 * ratio. The paper uses its measured R = 133 and reports 2.8x-15.6x
 * with a 4.9x geometric mean. We report Eq. 10 under the paper's
 * R = 133, under our own measured R, and the directly measured
 * wall-clock speedup (our simulator can actually switch modes).
 */

#include <chrono>
#include <cmath>
#include <functional>

#include "common.hh"

namespace
{

double
wallSeconds(const std::function<void()> &fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

} // namespace

int
main()
{
    using namespace osp;
    using namespace osp::bench;

    banner("Table 2", "estimated and measured simulation speedups");

    // Measure our own detailed/emulation per-instruction ratio once
    // (the R of Eq. 10), like the paper derived 133x from Table 1.
    double measured_ratio;
    {
        MachineConfig cfg = paperConfig();
        cfg.level = DetailLevel::Emulate;
        auto emu = makeMachine("ab-rand", cfg, 1.0);
        double t_emu = wallSeconds([&] { emu->run(); });
        cfg.level = DetailLevel::OooCache;
        auto det = makeMachine("ab-rand", cfg, 1.0);
        double t_det = wallSeconds([&] { det->run(); });
        measured_ratio = t_det / t_emu;
    }

    TablePrinter table({"bench", "coverage", "pred_inst_frac",
                        "est_speedup_R133", "est_speedup_Rmeas",
                        "measured_wall"});

    double gm133 = 1.0;
    double gmeas = 1.0;
    double gwall = 1.0;
    int count = 0;

    for (const auto &name : osIntensiveWorkloads()) {
        MachineConfig cfg = paperConfig();
        auto full = makeMachine(name, cfg, accuracyScale);
        double t_full = wallSeconds([&] { full->run(); });

        auto fast = makeMachine(name, cfg, accuracyScale);
        Accelerator accel(paperPredictor());
        fast->setController(&accel);
        double t_fast = wallSeconds([&] { fast->run(); });
        const RunTotals &t = fast->totals();

        double frac = static_cast<double>(t.osPredInsts) /
                      static_cast<double>(t.totalInsts());
        double est133 = estimatedSpeedup(t, 133.0);
        double estm = estimatedSpeedup(t, measured_ratio);
        double wall = t_full / t_fast;
        gm133 *= est133;
        gmeas *= estm;
        gwall *= wall;
        ++count;

        table.addRow({name, TablePrinter::pct(t.coverage()),
                      TablePrinter::pct(frac),
                      TablePrinter::fmt(est133, 2) + "x",
                      TablePrinter::fmt(estm, 2) + "x",
                      TablePrinter::fmt(wall, 2) + "x"});
    }
    table.addRow({"gmean", "", "",
                  TablePrinter::fmt(std::pow(gm133, 1.0 / count),
                                    2) +
                      "x",
                  TablePrinter::fmt(std::pow(gmeas, 1.0 / count),
                                    2) +
                      "x",
                  TablePrinter::fmt(std::pow(gwall, 1.0 / count),
                                    2) +
                      "x"});
    table.print(std::cout);

    std::cout << "\nmeasured detailed/emulation ratio R = "
              << TablePrinter::fmt(measured_ratio, 2) << "x\n";

    paperNote(
        "Eq. 10 with R=133 gives 2.8x (ab-rand) to 15.6x (iperf), "
        "geometric mean 4.9x. Simics could not switch modes "
        "dynamically, so the paper's speedups are estimates; ours "
        "can, so the measured-wall column is a real end-to-end "
        "speedup (bounded by our smaller R).");
    return 0;
}
