/**
 * @file
 * Figure 8: execution time (a) and IPC (b) from the accelerated
 * full-system simulation (App+OS Pred) and from application-only
 * simulation, normalized to full-system simulation.
 *
 * The paper's headline accuracy: average absolute execution-time
 * error 3.2%, worst case 4.2% (du); application-only errors average
 * 12.5% IPC with a 39.8% worst case.
 */

#include "common.hh"

int
main()
{
    using namespace osp;
    using namespace osp::bench;

    banner("Figure 8",
           "normalized execution time and IPC: App+OS Pred and "
           "App-Only vs full-system (Statistical strategy, window "
           "100)");

    TablePrinter table({"bench", "norm_time_pred", "norm_time_app",
                        "norm_ipc_pred", "norm_ipc_app",
                        "pred_time_err", "coverage"});

    RunningStats err_stats;
    for (const auto &name : osIntensiveWorkloads()) {
        MachineConfig cfg = paperConfig();
        RunTotals full = runFull(name, cfg, accuracyScale);
        AccelResult pred =
            runAccelerated(name, cfg, accuracyScale);
        RunTotals app = runAppOnly(name, cfg, accuracyScale);

        double t_pred =
            static_cast<double>(pred.totals.totalCycles()) /
            static_cast<double>(full.totalCycles());
        double t_app = static_cast<double>(app.totalCycles()) /
                       static_cast<double>(full.totalCycles());
        double ipc_pred = pred.totals.ipc() / full.ipc();
        double ipc_app = app.ipc() / full.ipc();
        double err = absError(
            static_cast<double>(pred.totals.totalCycles()),
            static_cast<double>(full.totalCycles()));
        err_stats.add(err);

        table.addRow({name, TablePrinter::fmt(t_pred, 3),
                      TablePrinter::fmt(t_app, 3),
                      TablePrinter::fmt(ipc_pred, 3),
                      TablePrinter::fmt(ipc_app, 3),
                      TablePrinter::pct(err),
                      TablePrinter::pct(pred.totals.coverage())});
    }
    table.print(std::cout);

    std::cout << "\naverage prediction error: "
              << TablePrinter::pct(err_stats.mean())
              << ", worst case: "
              << TablePrinter::pct(err_stats.max()) << "\n";

    paperNote(
        "App+OS Pred tracks full-system closely (avg 3.2% error, "
        "worst 4.2% in du); App-Only wildly underestimates "
        "execution time for the OS-intensive set.");
    return 0;
}
