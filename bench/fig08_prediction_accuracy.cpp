/**
 * @file
 * Figure 8: execution time (a) and IPC (b) from the accelerated
 * full-system simulation (App+OS Pred) and from application-only
 * simulation, normalized to full-system simulation.
 *
 * The paper's headline accuracy: average absolute execution-time
 * error 3.2%, worst case 4.2% (du); application-only errors average
 * 12.5% IPC with a 39.8% worst case.
 *
 * Executes through the parallel sweep runner (src/driver): all 15
 * cells (5 workloads x {full, app-only, accelerated}) run
 * concurrently, one isolated Machine each, and the table below is
 * read out of the aggregated result set. `--threads N` pins the
 * worker count (default: one per core), `--smoke` shrinks the work
 * volume for CI.
 */

#include "common.hh"
#include "driver/experiments.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Figure 8",
           "normalized execution time and IPC: App+OS Pred and "
           "App-Only vs full-system (Statistical strategy, window "
           "100)");

    SweepSpec spec = fig08Sweep(smokeFactor());
    spec.smoke = smokeMode();
    RunnerOptions opts;
    opts.threads = threadArg(argc, argv);
    SweepResult sweep = runSweep(spec, opts);

    TablePrinter table({"bench", "norm_time_pred", "norm_time_app",
                        "norm_ipc_pred", "norm_ipc_app",
                        "pred_time_err", "coverage"});

    RunningStats err_stats;
    for (const auto &name : spec.workloads) {
        const CellResult &full =
            *sweep.find(name, RunMode::Full);
        const CellResult &pred =
            *sweep.find(name, RunMode::Accelerated);
        const CellResult &app =
            *sweep.find(name, RunMode::AppOnly);

        double t_pred =
            static_cast<double>(pred.totals.totalCycles()) /
            static_cast<double>(full.totals.totalCycles());
        double t_app =
            static_cast<double>(app.totals.totalCycles()) /
            static_cast<double>(full.totals.totalCycles());
        double ipc_pred = pred.totals.ipc() / full.totals.ipc();
        double ipc_app = app.totals.ipc() / full.totals.ipc();
        err_stats.add(pred.cycleError);

        table.addRow({name, TablePrinter::fmt(t_pred, 3),
                      TablePrinter::fmt(t_app, 3),
                      TablePrinter::fmt(ipc_pred, 3),
                      TablePrinter::fmt(ipc_app, 3),
                      TablePrinter::pct(pred.cycleError),
                      TablePrinter::pct(pred.totals.coverage())});
    }
    table.print(std::cout);

    std::cout << "\naverage prediction error: "
              << TablePrinter::pct(err_stats.mean())
              << ", worst case: "
              << TablePrinter::pct(err_stats.max()) << "\n";

    std::cout << "\nsweep: " << sweep.cells.size() << " cells in "
              << TablePrinter::fmt(sweep.wallSeconds, 2) << " s on "
              << sweep.threads << " thread(s)\n";

    paperNote(
        "App+OS Pred tracks full-system closely (avg 3.2% error, "
        "worst 4.2% in du); App-Only wildly underestimates "
        "execution time for the OS-intensive set.");
    return 0;
}
