/**
 * @file
 * Figure 13 (extension): stratified interval sampling composed with
 * OS-service prediction.
 *
 * Detailed-simulation work shrinks multiplicatively when both
 * reductions are on: prediction removes the kernel instructions the
 * predictor covers, sampling removes the application intervals the
 * stratifier leaves out of the sample. Per workload we run the four
 * corners of that square — full detail, predict-only, sample-only,
 * combined — and report the shrink of *detailed-simulated
 * instructions* (a deterministic count, unlike wall clock) for each
 * corner, plus the check that predict-only x sample-only
 * approximately equals combined.
 *
 * Accuracy rides along: the sampled corners carry the stratified
 * estimator's 95% confidence interval, and the full-detail oracle
 * must land inside it.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_json.hh"
#include "common.hh"
#include "driver/experiments.hh"

namespace
{

/** Instructions simulated at the detailed level in one cell. */
double
detailedInsts(const osp::CellResult &r)
{
    const osp::RunTotals &t = r.totals;
    // OS instructions not absorbed by prediction stay detailed.
    double os_detailed =
        static_cast<double>(t.osInsts - t.osPredInsts);
    if (r.sample.present)
        return static_cast<double>(r.sample.detailedAppInsts) +
               os_detailed;
    return static_cast<double>(t.appInsts) + os_detailed;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Figure 13",
           "sampling x prediction: composed shrink of detailed "
           "work");

    SweepSpec spec = fig13Sweep(smokeFactor());
    spec.smoke = smokeMode();
    RunnerOptions opts;
    opts.threads = threadArg(argc, argv);
    SweepResult sweep = runSweep(spec, opts);

    TablePrinter table({"bench", "pred_only", "sample_only",
                        "combined", "pred*sample", "det_frac",
                        "cpi_err", "in_ci"});

    std::vector<double> composed;
    std::vector<double> fractions;
    int within = 0;
    int sampled_cells = 0;

    for (const auto &name : spec.workloads) {
        const CellResult &full = *sweep.find(name, RunMode::Full);
        const CellResult &pred =
            *sweep.find(name, RunMode::Accelerated);
        const CellResult &samp =
            *sweep.find(name, RunMode::Sampled);
        const CellResult &both =
            *sweep.find(name, RunMode::SampledAccel);

        double base = detailedInsts(full);
        double s_pred = base / detailedInsts(pred);
        double s_samp = base / detailedInsts(samp);
        double s_both = base / detailedInsts(both);
        composed.push_back(s_both);
        fractions.push_back(both.sample.detailedFraction);
        for (const CellResult *r : {&samp, &both}) {
            ++sampled_cells;
            if (r->sample.withinCi)
                ++within;
        }

        table.addRow(
            {name, TablePrinter::fmt(s_pred, 2) + "x",
             TablePrinter::fmt(s_samp, 2) + "x",
             TablePrinter::fmt(s_both, 2) + "x",
             TablePrinter::fmt(s_pred * s_samp, 2) + "x",
             TablePrinter::pct(both.sample.detailedFraction),
             TablePrinter::pct(both.sample.oracleError),
             both.sample.withinCi ? "yes" : "NO"});
    }
    table.print(std::cout);

    std::sort(composed.begin(), composed.end());
    std::sort(fractions.begin(), fractions.end());
    double med_speedup = composed[composed.size() / 2];
    double med_fraction = fractions[fractions.size() / 2];

    std::cout << "\ncombined detailed-inst shrink (median): "
              << TablePrinter::fmt(med_speedup, 2) << "x\n";
    std::cout << "combined detailed fraction (median):    "
              << TablePrinter::pct(med_fraction) << "\n";
    std::cout << "oracle CPI within 95% CI: " << within << "/"
              << sampled_cells << " sampled cells\n";

    std::cout << "\nsweep: " << sweep.cells.size() << " cells in "
              << TablePrinter::fmt(sweep.wallSeconds, 2) << " s on "
              << sweep.threads << " thread(s)\n";

    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--bench-json") {
            std::vector<BenchMetric> metrics = {
                {"sampled_vs_full_speedup", med_speedup, "x"},
                {"sampled_detailed_fraction", med_fraction,
                 "frac"},
            };
            if (!mergeBenchJson(argv[i + 1], smokeMode(), metrics))
                return 1;
            std::cerr << "fig13: bench json -> " << argv[i + 1]
                      << "\n";
        }
    }

    paperNote(
        "The paper's Eq. 10 speedup comes from prediction alone; "
        "this extension shows the two reductions compose because "
        "they remove disjoint work: prediction removes kernel "
        "instructions, stratified sampling removes unsampled "
        "application intervals, and the OS predictor stays active "
        "in both phases of the sampled run.");
    return 0;
}
