/**
 * @file
 * Ablation 2: delayed learning start (Sec. 4.4's first i.i.d.
 * violation — initialization effects and cold caches).
 *
 * The paper delays learning by 5 invocations, and shows find-od's
 * L2 miss-rate error improving when the delay is raised to 25. On
 * our substrate the thermal transient is longer (see DESIGN.md), so
 * this sweep is what calibrates the default of 100.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Ablation 2",
           "delayed learning start: warm-up invocations per "
           "service (paper: 5, find-od L2 fixed with 25)");

    const std::uint64_t delays[] = {0, 5, 25, 50, 100, 200};

    TablePrinter table({"bench", "delay", "coverage", "time_err"});
    for (const auto &name : osIntensiveWorkloads()) {
        MachineConfig cfg = paperConfig();
        RunTotals full = runFull(name, cfg, shapeScale);
        for (std::uint64_t delay : delays) {
            PredictorParams pp = paperPredictor();
            pp.warmupInvocations = delay;
            AccelResult res =
                runAccelerated(name, cfg, shapeScale, pp);
            double err = absError(
                static_cast<double>(res.totals.totalCycles()),
                static_cast<double>(full.totalCycles()));
            table.addRow({name, std::to_string(delay),
                          TablePrinter::pct(res.totals.coverage()),
                          TablePrinter::pct(err)});
        }
    }
    table.print(std::cout);

    paperNote(
        "recording the cold-start transient poisons the learned "
        "clusters; delaying the learning start trades a little "
        "coverage for large accuracy gains on cold-heavy "
        "workloads (du, iperf).");
    return 0;
}
