/**
 * @file
 * `sweep`: run any named experiment sweep through the parallel
 * runner and write machine-readable results.
 *
 *   sweep fig08 --threads 8 --out results.json
 *   sweep table2 --smoke --no-timing --out canonical.json
 *   sweep --list
 *
 * The emitted document follows the "ospredict-sweep-v1" schema
 * (src/driver/sweep.hh). With --no-timing the bytes are identical
 * for any --threads value at the same seed — CI runs the smoke
 * sweep at 1 and N threads and diffs the two files.
 */

#include <algorithm>
#include <fstream>
#include <iostream>

#include "bench_json.hh"
#include "common.hh"
#include "driver/experiments.hh"
#include "driver/sweep.hh"

namespace
{

int
usage(int code)
{
    std::ostream &os = code ? std::cerr : std::cout;
    os << "usage: sweep <name> [options]\n"
          "       sweep --list\n"
          "\n"
          "options:\n"
          "  --threads N    worker threads (default: one per core)\n"
          "  --out PATH     write results JSON (default: "
          "results.json; '-' for stdout)\n"
          "  --seed S       base seed (default "
       << osp::experimentSeed
       << ")\n"
          "  --smoke        shrink work volume ~20x (also: "
          "OSPREDICT_SMOKE=1)\n"
          "  --no-timing    omit wall-clock fields (canonical, "
          "thread-count-invariant bytes)\n"
          "  --trace PATH   enable per-cell event tracing and dump "
          "the rings as chrome://tracing JSON\n"
          "  --accuracy-report PATH\n"
          "                 write the human-readable prediction-"
          "accuracy / error-budget tables ('-' for stdout)\n"
          "  --bench-json PATH\n"
          "                 merge this sweep's wall-clock into an "
          "ospredict-bench-v1 document (see "
          "tools/check_perf_baseline.py)\n"
          "  --log-level {silent,warn,inform}\n"
          "                 global verbosity (default inform)\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace osp;
    osp::bench::init(argc, argv);

    std::string name;
    std::string out_path = "results.json";
    std::string trace_path;
    std::string accuracy_path;
    std::string bench_json_path;
    std::uint64_t seed = experimentSeed;
    unsigned threads = 0;
    bool timing = true;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            for (const auto &n : namedSweeps())
                std::cout << n << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            return usage(0);
        } else if (arg == "--smoke") {
            // consumed by bench::init()
        } else if (arg == "--no-timing") {
            timing = false;
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (arg == "--accuracy-report" && i + 1 < argc) {
            accuracy_path = argv[++i];
        } else if (arg == "--bench-json" && i + 1 < argc) {
            bench_json_path = argv[++i];
        } else if (arg == "--log-level" && i + 1 < argc) {
            std::string level = argv[++i];
            if (level == "silent") {
                setLogLevel(LogLevel::Silent);
            } else if (level == "warn") {
                setLogLevel(LogLevel::Warn);
            } else if (level == "inform") {
                setLogLevel(LogLevel::Inform);
            } else {
                std::cerr << "sweep: bad log level '" << level
                          << "'\n";
                return usage(2);
            }
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (!arg.empty() && arg[0] != '-' && name.empty()) {
            name = arg;
        } else {
            std::cerr << "sweep: bad argument '" << arg << "'\n";
            return usage(2);
        }
    }
    if (name.empty())
        return usage(2);
    const auto &names = namedSweeps();
    if (std::find(names.begin(), names.end(), name) ==
        names.end()) {
        std::cerr << "sweep: unknown sweep '" << name
                  << "' (try --list)\n";
        return 2;
    }

    SweepSpec spec = makeNamedSweep(name, bench::smokeFactor(),
                                    bench::smokeMode());
    spec.baseSeed = seed;

    RunnerOptions opts;
    opts.threads = threads;
    if (!trace_path.empty())
        opts.traceCapacity = 4096;
    SweepResult result = runSweep(spec, opts);

    JsonOptions jopts;
    jopts.includeTiming = timing;
    if (out_path == "-") {
        writeResultsJson(std::cout, result, jopts);
    } else {
        std::ofstream os(out_path);
        if (!os) {
            std::cerr << "sweep: cannot write " << out_path
                      << "\n";
            return 1;
        }
        writeResultsJson(os, result, jopts);
    }

    if (!trace_path.empty()) {
        std::ofstream ts(trace_path);
        if (!ts) {
            std::cerr << "sweep: cannot write " << trace_path
                      << "\n";
            return 1;
        }
        writeChromeTrace(ts, result);
        std::cerr << "sweep: trace -> " << trace_path << "\n";
    }

    if (!accuracy_path.empty()) {
        if (accuracy_path == "-") {
            writeAccuracyReport(std::cout, result);
        } else {
            std::ofstream as(accuracy_path);
            if (!as) {
                std::cerr << "sweep: cannot write "
                          << accuracy_path << "\n";
                return 1;
            }
            writeAccuracyReport(as, result);
            std::cerr << "sweep: accuracy report -> "
                      << accuracy_path << "\n";
        }
    }

    if (!bench_json_path.empty()) {
        // Wall-clock of the whole sweep: the end-to-end hot-path
        // number the perf gate tracks alongside the microbench
        // component rates.
        if (!bench::mergeBenchJson(
                bench_json_path, spec.smoke,
                {{"sweep_" + spec.name + "_wall_seconds",
                  result.wallSeconds, "s"}})) {
            return 1;
        }
        std::cerr << "sweep: bench json -> " << bench_json_path
                  << "\n";
    }

    std::cerr << "sweep " << spec.name << ": "
              << result.cells.size() << " cells in "
              << TablePrinter::fmt(result.wallSeconds, 2)
              << " s on " << result.threads << " thread(s)"
              << (spec.smoke ? " [smoke]" : "") << " -> "
              << out_path << "\n";
    return 0;
}
