/**
 * @file
 * `sweep`: run any named experiment sweep through the parallel
 * runner and write machine-readable results.
 *
 *   sweep fig08 --threads 8 --out results.json
 *   sweep table2 --smoke --no-timing --out canonical.json
 *   sweep --list
 *
 * The emitted document follows the "ospredict-sweep-v1" schema
 * (src/driver/sweep.hh). With --no-timing the bytes are identical
 * for any --threads value at the same seed — CI runs the smoke
 * sweep at 1 and N threads and diffs the two files.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>

#include "bench_json.hh"
#include "common.hh"
#include "driver/cell_cache.hh"
#include "driver/experiments.hh"
#include "driver/sweep.hh"
#include "store/plt_archive.hh"
#include "util/hash.hh"

#include "osp_code_fingerprint.hh"

namespace
{

int
usage(int code)
{
    std::ostream &os = code ? std::cerr : std::cout;
    os << "usage: sweep <name> [options]\n"
          "       sweep --list\n"
          "\n"
          "options:\n"
          "  --threads N    worker threads (default: one per core)\n"
          "  --out PATH     write results JSON (default: "
          "results.json; '-' for stdout)\n"
          "  --seed S       base seed (default "
       << osp::experimentSeed
       << ")\n"
          "  --smoke        shrink work volume ~20x (also: "
          "OSPREDICT_SMOKE=1)\n"
          "  --no-timing    omit wall-clock fields (canonical, "
          "thread-count-invariant bytes)\n"
          "  --trace PATH   enable per-cell event tracing and dump "
          "the rings as chrome://tracing JSON\n"
          "  --accuracy-report PATH\n"
          "                 write the human-readable prediction-"
          "accuracy / error-budget tables ('-' for stdout)\n"
          "  --bench-json PATH\n"
          "                 merge this sweep's wall-clock into an "
          "ospredict-bench-v1 document (see "
          "tools/check_perf_baseline.py)\n"
          "  --log-level {silent,warn,inform}\n"
          "                 global verbosity (default inform)\n"
          "  --store PATH   persistent result store: record every "
          "executed cell, content-addressed by its expanded spec, "
          "seed and the simulator code fingerprint\n"
          "  --incremental  reuse cells cached in --store instead "
          "of re-simulating them (results are byte-identical to a "
          "cold run)\n"
          "  --store-stats PATH\n"
          "                 write the volatile cache/store "
          "statistics document ('-' for stdout; requires --store)\n"
          "  --plt {save,warm,warm,save}\n"
          "                 archive learned PLT profiles into the "
          "store (save) and/or warm-start predictors from archived "
          "ones (warm; changes simulated results and the cells' "
          "cache identity)\n"
          "  --fingerprint STR\n"
          "                 override the built-in code fingerprint "
          "(testing)\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace osp;
    osp::bench::init(argc, argv);

    std::string name;
    std::string out_path = "results.json";
    std::string trace_path;
    std::string accuracy_path;
    std::string bench_json_path;
    std::string store_path;
    std::string store_stats_path;
    std::string fingerprint = OSP_CODE_FINGERPRINT;
    bool incremental = false;
    bool plt_save = false;
    bool plt_warm = false;
    std::uint64_t seed = experimentSeed;
    unsigned threads = 0;
    bool timing = true;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            for (const auto &n : namedSweeps())
                std::cout << n << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            return usage(0);
        } else if (arg == "--smoke") {
            // consumed by bench::init()
        } else if (arg == "--no-timing") {
            timing = false;
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (arg == "--accuracy-report" && i + 1 < argc) {
            accuracy_path = argv[++i];
        } else if (arg == "--bench-json" && i + 1 < argc) {
            bench_json_path = argv[++i];
        } else if (arg == "--log-level" && i + 1 < argc) {
            std::string level = argv[++i];
            if (level == "silent") {
                setLogLevel(LogLevel::Silent);
            } else if (level == "warn") {
                setLogLevel(LogLevel::Warn);
            } else if (level == "inform") {
                setLogLevel(LogLevel::Inform);
            } else {
                std::cerr << "sweep: bad log level '" << level
                          << "'\n";
                return usage(2);
            }
        } else if (arg == "--store" && i + 1 < argc) {
            store_path = argv[++i];
        } else if (arg == "--incremental") {
            incremental = true;
        } else if (arg == "--store-stats" && i + 1 < argc) {
            store_stats_path = argv[++i];
        } else if (arg == "--plt" && i + 1 < argc) {
            std::string modes = argv[++i];
            plt_save = modes.find("save") != std::string::npos;
            plt_warm = modes.find("warm") != std::string::npos;
            if (!plt_save && !plt_warm) {
                std::cerr << "sweep: bad --plt mode '" << modes
                          << "' (want save, warm or warm,save)\n";
                return usage(2);
            }
        } else if (arg == "--fingerprint" && i + 1 < argc) {
            fingerprint = argv[++i];
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (!arg.empty() && arg[0] != '-' && name.empty()) {
            name = arg;
        } else {
            std::cerr << "sweep: bad argument '" << arg << "'\n";
            return usage(2);
        }
    }
    if (name.empty())
        return usage(2);
    const auto &names = namedSweeps();
    if (std::find(names.begin(), names.end(), name) ==
        names.end()) {
        std::cerr << "sweep: unknown sweep '" << name
                  << "' (try --list)\n";
        return 2;
    }

    if (store_path.empty() &&
        (incremental || plt_save || plt_warm ||
         !store_stats_path.empty())) {
        std::cerr << "sweep: --incremental/--plt/--store-stats "
                     "require --store\n";
        return usage(2);
    }

    SweepSpec spec = makeNamedSweep(name, bench::smokeFactor(),
                                    bench::smokeMode());
    spec.baseSeed = seed;

    RunnerOptions opts;
    opts.threads = threads;
    if (!trace_path.empty())
        opts.traceCapacity = 4096;

    std::unique_ptr<store::PageStore> pstore;
    std::unique_ptr<CellCache> cache;
    std::map<std::string, std::string> warm_profiles;
    if (!store_path.empty()) {
        try {
            pstore = store::PageStore::open(store_path);
        } catch (const std::exception &e) {
            std::cerr << "sweep: " << e.what() << "\n";
            return 1;
        }
        cache = std::make_unique<CellCache>(*pstore, fingerprint);
        if (plt_warm) {
            store::PltArchive archive(*pstore);
            for (const std::string &w : spec.workloads) {
                std::optional<std::string> profile =
                    archive.load(w);
                if (!profile)
                    continue;
                // The profile changes the cells' simulated
                // results, so its hash is part of their identity.
                cache->setWarmProfileHash(
                    w, stableHash64(*profile));
                warm_profiles.emplace(w, std::move(*profile));
            }
        }
        opts.cache = cache.get();
        opts.incremental = incremental;
        if (!warm_profiles.empty())
            opts.warmProfiles = &warm_profiles;
    }

    SweepResult result;
    try {
        result = runSweep(spec, opts);
    } catch (const std::exception &e) {
        std::cerr << "sweep: " << e.what() << "\n";
        return 1;
    }

    JsonOptions jopts;
    jopts.includeTiming = timing;
    if (out_path == "-") {
        writeResultsJson(std::cout, result, jopts);
    } else {
        std::ofstream os(out_path);
        if (!os) {
            std::cerr << "sweep: cannot write " << out_path
                      << "\n";
            return 1;
        }
        writeResultsJson(os, result, jopts);
    }

    if (!trace_path.empty()) {
        std::ofstream ts(trace_path);
        if (!ts) {
            std::cerr << "sweep: cannot write " << trace_path
                      << "\n";
            return 1;
        }
        writeChromeTrace(ts, result);
        std::cerr << "sweep: trace -> " << trace_path << "\n";
    }

    if (!accuracy_path.empty()) {
        if (accuracy_path == "-") {
            writeAccuracyReport(std::cout, result);
        } else {
            std::ofstream as(accuracy_path);
            if (!as) {
                std::cerr << "sweep: cannot write "
                          << accuracy_path << "\n";
                return 1;
            }
            writeAccuracyReport(as, result);
            std::cerr << "sweep: accuracy report -> "
                      << accuracy_path << "\n";
        }
    }

    if (!bench_json_path.empty()) {
        // Wall-clock of the whole sweep: the end-to-end hot-path
        // number the perf gate tracks alongside the microbench
        // component rates.
        if (!bench::mergeBenchJson(
                bench_json_path, spec.smoke,
                {{"sweep_" + spec.name + "_wall_seconds",
                  result.wallSeconds, "s"}})) {
            return 1;
        }
        std::cerr << "sweep: bench json -> " << bench_json_path
                  << "\n";
    }

    if (plt_save) {
        // Archive one learned profile per workload: the first
        // accelerated, non-failed cell in index order (cached
        // cells round-trip their profile, so warm runs re-archive
        // the same bytes).
        store::PltArchive archive(*pstore);
        std::uint64_t archived = 0;
        for (const std::string &w : spec.workloads) {
            for (const CellResult &r : result.cells) {
                if (r.failed || r.cell.workload != w ||
                    r.pltProfile.empty())
                    continue;
                try {
                    archive.save(w, r.pltProfile);
                } catch (const std::exception &e) {
                    std::cerr << "sweep: " << e.what() << "\n";
                    return 1;
                }
                ++archived;
                break;
            }
        }
        std::cerr << "sweep: archived " << archived
                  << " PLT profile(s) -> " << store_path << "\n";
    }

    if (!store_stats_path.empty()) {
        JsonValue stats = cache->statsToJson();
        if (store_stats_path == "-") {
            stats.write(std::cout, 2);
            std::cout << "\n";
        } else {
            std::ofstream ss(store_stats_path);
            if (!ss) {
                std::cerr << "sweep: cannot write "
                          << store_stats_path << "\n";
                return 1;
            }
            stats.write(ss, 2);
            ss << "\n";
            std::cerr << "sweep: store stats -> "
                      << store_stats_path << "\n";
        }
    }

    std::cerr << "sweep " << spec.name << ": "
              << result.cells.size() << " cells in "
              << TablePrinter::fmt(result.wallSeconds, 2)
              << " s on " << result.threads << " thread(s)"
              << (spec.smoke ? " [smoke]" : "") << " -> "
              << out_path << "\n";
    return 0;
}
