/**
 * @file
 * `sweep`: run any named experiment sweep through the parallel
 * runner and write machine-readable results.
 *
 *   sweep fig08 --threads 8 --out results.json
 *   sweep table2 --smoke --no-timing --out canonical.json
 *   sweep --list
 *
 * The emitted document follows the "ospredict-sweep-v1" schema
 * (src/driver/sweep.hh). With --no-timing the bytes are identical
 * for any --threads value at the same seed — CI runs the smoke
 * sweep at 1 and N threads and diffs the two files.
 *
 * Distributed execution over a shared --store (the claim/lease
 * protocol of driver/claim_executor.hh):
 *
 *   sweep table2 --store s.db --jobs 3 --out results.json
 *       fork 3 local worker processes, wait for the fleet, then
 *       assemble — one command, same bytes as --threads runs.
 *   sweep table2 --store s.db --worker --owner w1
 *       one claim-loop worker; run any number of these on the same
 *       store, from any mix of terminals on one host (flock(2)
 *       arbitration is host-local — network filesystems are not
 *       supported; see EXPERIMENTS.md "Distributed sweeps").
 *   sweep table2 --store s.db --assemble --out results.json
 *       replay every cached cell into the final document (cells no
 *       worker finished are executed locally; cells that exhausted
 *       their retries are marked failed from the claim table).
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "bench_json.hh"
#include "common.hh"
#include "driver/cell_cache.hh"
#include "driver/claim_executor.hh"
#include "driver/experiments.hh"
#include "driver/fleet.hh"
#include "driver/sweep.hh"
#include "store/plt_archive.hh"
#include "util/hash.hh"

#include "osp_code_fingerprint.hh"

namespace
{

int
usage(int code)
{
    std::ostream &os = code ? std::cerr : std::cout;
    os << "usage: sweep <name> [options]\n"
          "       sweep --list\n"
          "\n"
          "options:\n"
          "  --threads N    worker threads (default: one per core)\n"
          "  --out PATH     write results JSON (default: "
          "results.json; '-' for stdout)\n"
          "  --seed S       base seed (default "
       << osp::experimentSeed
       << ")\n"
          "  --smoke        shrink work volume ~20x (also: "
          "OSPREDICT_SMOKE=1)\n"
          "  --no-timing    omit wall-clock fields (canonical, "
          "thread-count-invariant bytes)\n"
          "  --backend {plt,learned}\n"
          "                 prediction backend for every predictor "
          "variant (default plt, the paper's clustering; learned = "
          "online feature-vector model). Folds into cached-cell "
          "identity; non-default choices are recorded in the "
          "document's sweep.backends field\n"
          "  --sample intervals=N,strata=K,rate=R[,alloc=A]\n"
          "                 enable stratified interval sampling: "
          "adds a sampled cell per Full baseline and a "
          "sampled-accel cell per Accelerated one (N = interval "
          "length in app instructions, K = strata, R = sampled "
          "fraction in (0,1], A = proportional|neyman). Folds into "
          "cached-cell identity; results gain the "
          "ospredict-sample-v1 section\n"
          "  --trace PATH   enable per-cell event tracing and dump "
          "the rings as chrome://tracing JSON\n"
          "  --accuracy-report PATH\n"
          "                 write the human-readable prediction-"
          "accuracy / error-budget tables ('-' for stdout)\n"
          "  --bench-json PATH\n"
          "                 merge this sweep's wall-clock into an "
          "ospredict-bench-v1 document (see "
          "tools/check_perf_baseline.py)\n"
          "  --log-level {silent,warn,inform}\n"
          "                 global verbosity (default inform)\n"
          "  --store PATH   persistent result store: record every "
          "executed cell, content-addressed by its expanded spec, "
          "seed and the simulator code fingerprint\n"
          "  --incremental  reuse cells cached in --store instead "
          "of re-simulating them (results are byte-identical to a "
          "cold run)\n"
          "  --store-stats PATH\n"
          "                 write the volatile cache/store "
          "statistics document ('-' for stdout; requires --store)\n"
          "  --plt {save,warm,warm,save}\n"
          "                 archive learned PLT profiles into the "
          "store (save) and/or warm-start predictors from archived "
          "ones (warm; changes simulated results and the cells' "
          "cache identity)\n"
          "  --fingerprint STR\n"
          "                 override the built-in code fingerprint "
          "(testing)\n"
          "  --store-wait MS\n"
          "                 wait up to MS ms for another read-write "
          "handle to release the store instead of failing "
          "immediately (requires --store)\n"
          "\n"
          "distributed execution (all require --store):\n"
          "  --jobs N       fork N worker processes that claim "
          "cells from the shared store, then assemble the results "
          "document (byte-identical to a single-process run)\n"
          "  --worker       run one claim-loop worker process and "
          "exit (no results document; combine with --store-stats)\n"
          "  --assemble     assemble the results document from "
          "cached cells and the claim table (implies "
          "--incremental)\n"
          "  --owner ID     worker id recorded in claim records "
          "(default: pid<pid>)\n"
          "  --lease-ticks N\n"
          "                 heartbeats before an idle claim is "
          "reclaimable (default 64)\n"
          "  --max-retries N\n"
          "                 attempts before a cell is marked failed "
          "(default 3)\n"
          "  --poll-ms MS   initial idle-poll sleep while other "
          "workers hold leases (default 50)\n"
          "  --refresh-ms MS\n"
          "                 lease-refresh period while a cell "
          "executes (default 200; 0 disables)\n"
          "  --kill-after-claim\n"
          "                 crash-test seam: SIGKILL after the "
          "first claim commits (--worker: ourselves; --jobs: the "
          "first forked worker becomes the victim)\n"
          "\n"
          "fleet observability (all require --store; see "
          "EXPERIMENTS.md \"Monitoring distributed sweeps\"):\n"
          "  --monitor      poll the store read-only and render "
          "live fleet status until the sweep completes (pass the "
          "same --trace/--plt/--fingerprint flags as the fleet so "
          "cell identities match)\n"
          "  --monitor-interval MS\n"
          "                 poll period (default 500)\n"
          "  --monitor-max N\n"
          "                 stop after N polls even if incomplete "
          "(default 0 = until complete)\n"
          "  --fleet-report PATH\n"
          "                 write the deterministic "
          "ospredict-fleet-v1 worker-telemetry report ('-' for "
          "stdout)\n"
          "  --fleet-prom PATH\n"
          "                 write the same view as Prometheus text "
          "exposition ('-' for stdout)\n"
          "\n"
          "with --jobs/--assemble, --trace writes the *merged* "
          "timeline: every cell's lanes plus one lane per worker "
          "pid\n";
    return code;
}

/** Parse "intervals=N,strata=K,rate=R[,alloc=A]" (any subset, any
 *  order; unset knobs keep their defaults). */
bool
parseSampleSpec(const std::string &text, osp::SampleParams &out)
{
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        std::string item = text.substr(pos, comma - pos);
        pos = comma + 1;
        std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            return false;
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        if (val.empty())
            return false;
        if (key == "intervals") {
            out.intervalLen =
                std::strtoull(val.c_str(), nullptr, 10);
            if (out.intervalLen == 0)
                return false;
        } else if (key == "strata") {
            out.strata = static_cast<std::uint32_t>(
                std::strtoul(val.c_str(), nullptr, 10));
            if (out.strata == 0)
                return false;
        } else if (key == "rate") {
            out.rate = std::strtod(val.c_str(), nullptr);
            if (!(out.rate > 0.0) || out.rate > 1.0)
                return false;
        } else if (key == "alloc") {
            if (val == "proportional") {
                out.allocation =
                    osp::StratifyParams::Allocation::Proportional;
            } else if (val == "neyman") {
                out.allocation =
                    osp::StratifyParams::Allocation::Neyman;
            } else {
                return false;
            }
        } else {
            return false;
        }
    }
    out.enabled = true;
    return true;
}

/**
 * The body of one worker process (--worker, and each --jobs
 * child): open the store in shared mode, run the claim loop, and
 * optionally dump the per-worker stats document.
 */
int
runWorkerProcess(const osp::SweepSpec &spec,
                 const std::string &store_path,
                 const std::string &fingerprint, bool plt_warm,
                 osp::WorkerOptions wopts,
                 const std::string &stats_path)
{
    using namespace osp;
    try {
        store::StoreOptions sopts;
        sopts.shared = true;
        std::unique_ptr<store::PageStore> pstore =
            store::PageStore::open(store_path, sopts);
        CellCache cache(*pstore, fingerprint);
        std::map<std::string, std::string> warm_profiles;
        if (plt_warm) {
            store::PltArchive archive(*pstore);
            for (const std::string &w : spec.workloads) {
                std::optional<std::string> profile =
                    archive.load(w);
                if (!profile)
                    continue;
                cache.setWarmProfileHash(w,
                                         stableHash64(*profile));
                warm_profiles.emplace(w, std::move(*profile));
            }
        }
        if (!warm_profiles.empty())
            wopts.warmProfiles = &warm_profiles;

        WorkerStats stats = runSweepWorker(spec, cache, wopts);

        if (!stats_path.empty()) {
            JsonValue doc = cache.statsToJson();
            doc.add("worker",
                    workerStatsToJson(stats, wopts.owner));
            std::ofstream ss(stats_path);
            if (!ss) {
                std::cerr << "sweep: cannot write " << stats_path
                          << "\n";
                return 1;
            }
            doc.write(ss, 2);
            ss << "\n";
        }
        std::cerr << "sweep worker " << wopts.owner << ": claimed "
                  << stats.claimed << ", committed "
                  << stats.committed << ", reclaimed "
                  << stats.reclaimed << ", lost "
                  << stats.lostLeases << "\n";
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "sweep worker " << wopts.owner << ": "
                  << e.what() << "\n";
        return 1;
    }
}

/** The sweep's cell keys in index order — the same identity every
 *  worker computes, so fleet aggregation finds their results. */
std::vector<std::string>
cellKeysFor(const osp::SweepSpec &spec, osp::CellCache &cache,
            std::size_t trace_capacity)
{
    std::vector<osp::SweepCell> cells = osp::expandSweep(spec);
    std::vector<std::string> keys(cells.size());
    for (const osp::SweepCell &cell : cells)
        keys[cell.index] =
            cache.cellKey(spec, cell, trace_capacity);
    return keys;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace osp;
    osp::bench::init(argc, argv);

    std::string name;
    std::string out_path = "results.json";
    std::string trace_path;
    std::string accuracy_path;
    std::string bench_json_path;
    std::string store_path;
    std::string store_stats_path;
    std::string fingerprint = OSP_CODE_FINGERPRINT;
    PredictorBackendKind backend = PredictorBackendKind::Plt;
    SampleParams sample;
    bool incremental = false;
    bool plt_save = false;
    bool plt_warm = false;
    std::uint64_t seed = experimentSeed;
    unsigned threads = 0;
    bool timing = true;
    unsigned jobs = 0;
    bool worker_mode = false;
    bool assemble = false;
    bool monitor = false;
    long monitor_interval_ms = 500;
    std::uint64_t monitor_max = 0;
    std::string fleet_report_path;
    std::string fleet_prom_path;
    long store_wait_ms = 0;
    WorkerOptions wopts;
    wopts.owner = "pid" + std::to_string(::getpid());

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            for (const auto &n : namedSweeps())
                std::cout << n << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            return usage(0);
        } else if (arg == "--smoke") {
            // consumed by bench::init()
        } else if (arg == "--no-timing") {
            timing = false;
        } else if (arg == "--backend" && i + 1 < argc) {
            std::string bname = argv[++i];
            if (!predictorBackendFromName(bname, backend)) {
                std::cerr << "sweep: bad backend '" << bname
                          << "' (want plt or learned)\n";
                return usage(2);
            }
        } else if (arg == "--sample" && i + 1 < argc) {
            std::string sdesc = argv[++i];
            if (!parseSampleSpec(sdesc, sample)) {
                std::cerr << "sweep: bad --sample spec '" << sdesc
                          << "' (want intervals=N,strata=K,rate=R"
                             "[,alloc=proportional|neyman])\n";
                return usage(2);
            }
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (arg == "--accuracy-report" && i + 1 < argc) {
            accuracy_path = argv[++i];
        } else if (arg == "--bench-json" && i + 1 < argc) {
            bench_json_path = argv[++i];
        } else if (arg == "--log-level" && i + 1 < argc) {
            std::string level = argv[++i];
            if (level == "silent") {
                setLogLevel(LogLevel::Silent);
            } else if (level == "warn") {
                setLogLevel(LogLevel::Warn);
            } else if (level == "inform") {
                setLogLevel(LogLevel::Inform);
            } else {
                std::cerr << "sweep: bad log level '" << level
                          << "'\n";
                return usage(2);
            }
        } else if (arg == "--store" && i + 1 < argc) {
            store_path = argv[++i];
        } else if (arg == "--incremental") {
            incremental = true;
        } else if (arg == "--store-stats" && i + 1 < argc) {
            store_stats_path = argv[++i];
        } else if (arg == "--plt" && i + 1 < argc) {
            std::string modes = argv[++i];
            plt_save = modes.find("save") != std::string::npos;
            plt_warm = modes.find("warm") != std::string::npos;
            if (!plt_save && !plt_warm) {
                std::cerr << "sweep: bad --plt mode '" << modes
                          << "' (want save, warm or warm,save)\n";
                return usage(2);
            }
        } else if (arg == "--fingerprint" && i + 1 < argc) {
            fingerprint = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
            if (jobs == 0) {
                std::cerr << "sweep: --jobs wants N >= 1\n";
                return usage(2);
            }
        } else if (arg == "--worker") {
            worker_mode = true;
        } else if (arg == "--assemble") {
            assemble = true;
        } else if (arg == "--owner" && i + 1 < argc) {
            wopts.owner = argv[++i];
        } else if (arg == "--lease-ticks" && i + 1 < argc) {
            wopts.leaseTicks =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--max-retries" && i + 1 < argc) {
            wopts.maxRetries =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--poll-ms" && i + 1 < argc) {
            wopts.pollMs = std::strtol(argv[++i], nullptr, 10);
        } else if (arg == "--refresh-ms" && i + 1 < argc) {
            wopts.refreshMs =
                std::strtol(argv[++i], nullptr, 10);
        } else if (arg == "--kill-after-claim") {
            wopts.killAfterFirstClaim = true;
        } else if (arg == "--monitor") {
            monitor = true;
        } else if (arg == "--monitor-interval" && i + 1 < argc) {
            monitor_interval_ms =
                std::strtol(argv[++i], nullptr, 10);
        } else if (arg == "--monitor-max" && i + 1 < argc) {
            monitor_max = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--fleet-report" && i + 1 < argc) {
            fleet_report_path = argv[++i];
        } else if (arg == "--fleet-prom" && i + 1 < argc) {
            fleet_prom_path = argv[++i];
        } else if (arg == "--store-wait" && i + 1 < argc) {
            store_wait_ms = std::strtol(argv[++i], nullptr, 10);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (!arg.empty() && arg[0] != '-' && name.empty()) {
            name = arg;
        } else {
            std::cerr << "sweep: bad argument '" << arg << "'\n";
            return usage(2);
        }
    }
    if (name.empty())
        return usage(2);
    const auto &names = namedSweeps();
    if (std::find(names.begin(), names.end(), name) ==
        names.end()) {
        std::cerr << "sweep: unknown sweep '" << name
                  << "' (try --list)\n";
        return 2;
    }

    if (store_path.empty() &&
        (incremental || plt_save || plt_warm ||
         !store_stats_path.empty())) {
        std::cerr << "sweep: --incremental/--plt/--store-stats "
                     "require --store\n";
        return usage(2);
    }
    if (store_path.empty() &&
        (jobs > 0 || worker_mode || assemble || monitor ||
         !fleet_report_path.empty() || !fleet_prom_path.empty() ||
         store_wait_ms > 0)) {
        std::cerr << "sweep: --jobs/--worker/--assemble/--monitor/"
                     "--fleet-report/--fleet-prom/--store-wait "
                     "require --store\n";
        return usage(2);
    }
    if ((jobs > 0) + (worker_mode ? 1 : 0) + (assemble ? 1 : 0) +
            (monitor ? 1 : 0) >
        1) {
        std::cerr << "sweep: --jobs, --worker, --assemble and "
                     "--monitor are mutually exclusive\n";
        return usage(2);
    }
    if (assemble)
        incremental = true;

    SweepSpec spec = makeNamedSweep(name, bench::smokeFactor(),
                                    bench::smokeMode());
    spec.baseSeed = seed;
    // Applied before any fork: --jobs workers inherit the spec, so
    // fleet, --worker and assembly all simulate the same backend.
    setSweepBackend(spec, backend);
    // Likewise pre-fork, so every execution path (including cell
    // identity hashing) sees the same sampled modes and knobs.
    if (sample.enabled)
        applySweepSampling(spec, sample);

    if (worker_mode) {
        wopts.traceCapacity = trace_path.empty() ? 0 : 4096;
        return runWorkerProcess(spec, store_path, fingerprint,
                                plt_warm, wopts,
                                store_stats_path);
    }

    if (monitor) {
        // Each poll re-opens the store read-only: the open picks
        // the newest valid meta page atomically, so every rendering
        // is one crash-consistent snapshot of a live fleet, and the
        // monitor never contends for the transaction gate.
        std::size_t cap = trace_path.empty() ? 0 : 4096;
        std::uint64_t polls = 0;
        for (;;) {
            bool complete = false;
            try {
                store::StoreOptions sopts;
                sopts.readOnly = true;
                std::unique_ptr<store::PageStore> ps =
                    store::PageStore::open(store_path, sopts);
                CellCache mcache(*ps, fingerprint);
                if (plt_warm) {
                    store::PltArchive archive(*ps);
                    for (const std::string &w : spec.workloads) {
                        std::optional<std::string> profile =
                            archive.load(w);
                        if (profile)
                            mcache.setWarmProfileHash(
                                w, stableHash64(*profile));
                    }
                }
                FleetView view = readFleetView(
                    *ps, fingerprint,
                    cellKeysFor(spec, mcache, cap));
                view.sweep = spec.name;
                renderFleetStatus(std::cout, view,
                                  wopts.leaseTicks);
                warnFleetDrops(view);
                complete = view.cells.outstanding() == 0;
            } catch (const std::exception &e) {
                std::cout << "monitor: " << e.what()
                          << " (waiting)\n";
            }
            std::cout.flush();
            ++polls;
            if (complete)
                return 0;
            if (monitor_max && polls >= monitor_max)
                return 0;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(monitor_interval_ms));
        }
    }

    double fleet_seconds = 0.0;
    if (jobs > 0) {
        // Fork the fleet before opening the store: flock(2) state
        // is shared across fork, so the parent must not hold any
        // handle the children would inherit. Each child opens the
        // store itself in shared mode.
        auto fleet_start = std::chrono::steady_clock::now();
        std::vector<pid_t> pids;
        for (unsigned k = 0; k < jobs; ++k) {
            pid_t pid = ::fork();
            if (pid < 0) {
                std::cerr << "sweep: fork failed\n";
                return 1;
            }
            if (pid == 0) {
                WorkerOptions w = wopts;
                w.owner = wopts.owner + "-w" +
                          std::to_string(k + 1);
                // --kill-after-claim elects the first worker as
                // the crash victim; the survivors reclaim its
                // lease and CI asserts the victim's published
                // fleet snapshot outlived it.
                w.killAfterFirstClaim =
                    wopts.killAfterFirstClaim && k == 0;
                w.traceCapacity = trace_path.empty() ? 0 : 4096;
                std::string stats_path =
                    store_stats_path.empty() ||
                            store_stats_path == "-"
                        ? std::string()
                        : store_stats_path + ".w" +
                              std::to_string(k + 1);
                int code = runWorkerProcess(spec, store_path,
                                            fingerprint, plt_warm,
                                            w, stats_path);
                ::_exit(code);
            }
            pids.push_back(pid);
        }
        unsigned failed_workers = 0;
        for (pid_t pid : pids) {
            int status = 0;
            if (::waitpid(pid, &status, 0) < 0 ||
                !WIFEXITED(status) || WEXITSTATUS(status) != 0)
                ++failed_workers;
        }
        auto fleet_end = std::chrono::steady_clock::now();
        fleet_seconds = std::chrono::duration<double>(fleet_end -
                                                      fleet_start)
                            .count();
        if (failed_workers > 0) {
            // Assembly recovers whatever the fleet did finish (and
            // executes the rest locally), so a dead worker is a
            // warning, not an error.
            std::cerr << "sweep: " << failed_workers << " of "
                      << jobs << " worker(s) failed; assembling "
                      << "from what was committed\n";
        }
        // The remainder of main() is the assembly pass.
        assemble = true;
        incremental = true;
    }

    RunnerOptions opts;
    opts.threads = threads;
    if (!trace_path.empty())
        opts.traceCapacity = 4096;
    opts.claimAware = assemble;

    std::unique_ptr<store::PageStore> pstore;
    std::unique_ptr<CellCache> cache;
    std::map<std::string, std::string> warm_profiles;
    if (!store_path.empty()) {
        try {
            store::StoreOptions sopts;
            sopts.lockWaitMs = store_wait_ms;
            pstore = store::PageStore::open(store_path, sopts);
        } catch (const std::exception &e) {
            std::cerr << "sweep: " << e.what() << "\n";
            return 1;
        }
        cache = std::make_unique<CellCache>(*pstore, fingerprint);
        if (plt_warm) {
            store::PltArchive archive(*pstore);
            for (const std::string &w : spec.workloads) {
                std::optional<std::string> profile =
                    archive.load(w);
                if (!profile)
                    continue;
                // The profile changes the cells' simulated
                // results, so its hash is part of their identity.
                cache->setWarmProfileHash(
                    w, stableHash64(*profile));
                warm_profiles.emplace(w, std::move(*profile));
            }
        }
        opts.cache = cache.get();
        opts.incremental = incremental;
        if (!warm_profiles.empty())
            opts.warmProfiles = &warm_profiles;
    }

    SweepResult result;
    try {
        result = runSweep(spec, opts);
    } catch (const std::exception &e) {
        std::cerr << "sweep: " << e.what() << "\n";
        return 1;
    }
    result.workerProcesses = jobs;

    JsonOptions jopts;
    jopts.includeTiming = timing;
    if (out_path == "-") {
        writeResultsJson(std::cout, result, jopts);
    } else {
        std::ofstream os(out_path);
        if (!os) {
            std::cerr << "sweep: cannot write " << out_path
                      << "\n";
            return 1;
        }
        writeResultsJson(os, result, jopts);
    }

    // Aggregate the fleet keyspace once for every consumer below:
    // the merged trace, --fleet-report and --fleet-prom all read
    // the same view, and dropped-trace warnings are re-issued here
    // with per-owner attribution (the in-process warning died with
    // the worker).
    std::optional<FleetView> fleet_view;
    if (!store_path.empty() &&
        (assemble || !fleet_report_path.empty() ||
         !fleet_prom_path.empty())) {
        fleet_view.emplace(readFleetView(
            *pstore, fingerprint,
            cellKeysFor(spec, *cache, opts.traceCapacity)));
        fleet_view->sweep = spec.name;
        warnFleetDrops(*fleet_view);
    }

    if (!trace_path.empty()) {
        std::ofstream ts(trace_path);
        if (!ts) {
            std::cerr << "sweep: cannot write " << trace_path
                      << "\n";
            return 1;
        }
        if (fleet_view && !fleet_view->workers.empty()) {
            writeMergedChromeTrace(ts, result, *fleet_view);
            std::cerr << "sweep: merged trace ("
                      << fleet_view->workers.size()
                      << " worker lane(s)) -> " << trace_path
                      << "\n";
        } else {
            writeChromeTrace(ts, result);
            std::cerr << "sweep: trace -> " << trace_path << "\n";
        }
    }

    if (!fleet_report_path.empty()) {
        if (fleet_report_path == "-") {
            writeFleetReport(std::cout, *fleet_view);
        } else {
            std::ofstream fs(fleet_report_path);
            if (!fs) {
                std::cerr << "sweep: cannot write "
                          << fleet_report_path << "\n";
                return 1;
            }
            writeFleetReport(fs, *fleet_view);
            std::cerr << "sweep: fleet report -> "
                      << fleet_report_path << "\n";
        }
    }

    if (!fleet_prom_path.empty()) {
        if (fleet_prom_path == "-") {
            writePrometheusReport(std::cout, *fleet_view);
        } else {
            std::ofstream fs(fleet_prom_path);
            if (!fs) {
                std::cerr << "sweep: cannot write "
                          << fleet_prom_path << "\n";
                return 1;
            }
            writePrometheusReport(fs, *fleet_view);
            std::cerr << "sweep: fleet prometheus -> "
                      << fleet_prom_path << "\n";
        }
    }

    if (!accuracy_path.empty()) {
        if (accuracy_path == "-") {
            writeAccuracyReport(std::cout, result);
        } else {
            std::ofstream as(accuracy_path);
            if (!as) {
                std::cerr << "sweep: cannot write "
                          << accuracy_path << "\n";
                return 1;
            }
            writeAccuracyReport(as, result);
            std::cerr << "sweep: accuracy report -> "
                      << accuracy_path << "\n";
        }
    }

    if (!bench_json_path.empty()) {
        // Wall-clock of the whole sweep: the end-to-end hot-path
        // number the perf gate tracks alongside the microbench
        // component rates. A --jobs run reports under jobs-tagged
        // names — the fleet time (fork to last exit) is the
        // multi-process scaling headline — so single- and
        // multi-process rows coexist in one document.
        std::vector<bench::BenchMetric> metrics;
        if (jobs > 0) {
            std::string tag =
                "sweep_" + spec.name + "_jobs" +
                std::to_string(jobs);
            metrics.push_back(
                {tag + "_fleet_seconds", fleet_seconds, "s"});
            metrics.push_back(
                {tag + "_wall_seconds", result.wallSeconds, "s"});
        } else {
            metrics.push_back(
                {"sweep_" + spec.name + "_wall_seconds",
                 result.wallSeconds, "s"});
        }
        if (!bench::mergeBenchJson(bench_json_path, spec.smoke,
                                   metrics)) {
            return 1;
        }
        std::cerr << "sweep: bench json -> " << bench_json_path
                  << "\n";
    }

    if (plt_save) {
        // Archive one learned profile per workload: the first
        // accelerated, non-failed cell in index order (cached
        // cells round-trip their profile, so warm runs re-archive
        // the same bytes).
        store::PltArchive archive(*pstore);
        std::uint64_t archived = 0;
        for (const std::string &w : spec.workloads) {
            for (const CellResult &r : result.cells) {
                if (r.failed || r.cell.workload != w ||
                    r.pltProfile.empty())
                    continue;
                try {
                    archive.save(w, r.pltProfile);
                } catch (const std::exception &e) {
                    std::cerr << "sweep: " << e.what() << "\n";
                    return 1;
                }
                ++archived;
                break;
            }
        }
        std::cerr << "sweep: archived " << archived
                  << " PLT profile(s) -> " << store_path << "\n";
    }

    if (!store_stats_path.empty()) {
        JsonValue stats = cache->statsToJson();
        if (store_stats_path == "-") {
            stats.write(std::cout, 2);
            std::cout << "\n";
        } else {
            std::ofstream ss(store_stats_path);
            if (!ss) {
                std::cerr << "sweep: cannot write "
                          << store_stats_path << "\n";
                return 1;
            }
            stats.write(ss, 2);
            ss << "\n";
            std::cerr << "sweep: store stats -> "
                      << store_stats_path << "\n";
        }
    }

    std::cerr << "sweep " << spec.name << ": "
              << result.cells.size() << " cells in "
              << TablePrinter::fmt(result.wallSeconds, 2)
              << " s on " << result.threads << " thread(s)"
              << (spec.smoke ? " [smoke]" : "") << " -> "
              << out_path << "\n";
    return 0;
}
