/**
 * @file
 * Figure 7: initial learning-window size required to capture every
 * cluster whose probability of occurrence is at least p_min, at 95%
 * and 99% degrees of confidence (Eq. 3).
 *
 * Purely analytic: N = ceil(ln(1 - DoC) / ln(1 - p_min)). The paper
 * reads off N = 100 at p_min = 3%, DoC = 95% and "a little over
 * 150" at 99%.
 */

#include "common.hh"

#include "stats/learning_window.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Figure 7",
           "initial learning window vs minimum probability of "
           "occurrence");

    TablePrinter table({"p_min", "window_doc95", "window_doc99"});
    for (double pmin :
         {0.005, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08,
          0.09, 0.10, 0.12, 0.14, 0.16, 0.18, 0.20}) {
        table.addRow(
            {TablePrinter::fmt(pmin, 3),
             std::to_string(learningWindowSize(pmin, 0.95)),
             std::to_string(learningWindowSize(pmin, 0.99))});
    }
    table.print(std::cout);

    paperNote(
        "~100 trials at p_min = 3% / 95% DoC; a little over 150 at "
        "99% DoC; the curve falls steeply as p_min grows.");
    return 0;
}
