/**
 * @file
 * Ablation 1: scaled-cluster half-range sweep (the Sec. 4.2 "bin
 * sizing" discussion).
 *
 * Too-narrow ranges fragment behaviour points into many clusters
 * (longer learning, frequent signature mismatches, lower coverage);
 * too-wide ranges merge distinct points (worse accuracy). The paper
 * settles on centroid +- 5%.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Ablation 1",
           "scaled-cluster half-range sweep (paper: 5%)");

    const double ranges[] = {0.01, 0.02, 0.05, 0.10, 0.20};

    TablePrinter table({"bench", "range", "coverage", "time_err",
                        "outlier_frac", "relearn_events"});

    for (const auto &name : {std::string("ab-rand"),
                             std::string("ab-seq"),
                             std::string("iperf")}) {
        MachineConfig cfg = paperConfig();
        RunTotals full = runFull(name, cfg, shapeScale);
        for (double range : ranges) {
            PredictorParams pp = paperPredictor();
            pp.clusterRange = range;
            AccelResult res =
                runAccelerated(name, cfg, shapeScale, pp);
            double err = absError(
                static_cast<double>(res.totals.totalCycles()),
                static_cast<double>(full.totalCycles()));
            double outlier_frac =
                res.stats.predictedRuns
                    ? static_cast<double>(res.stats.outliers) /
                          static_cast<double>(
                              res.stats.predictedRuns)
                    : 0.0;
            table.addRow({name, TablePrinter::pct(range, 0),
                          TablePrinter::pct(res.totals.coverage()),
                          TablePrinter::pct(err),
                          TablePrinter::pct(outlier_frac),
                          std::to_string(
                              res.stats.relearnEvents)});
        }
    }
    table.print(std::cout);

    paperNote(
        "the paper's 5% range balances fragmentation (outliers, "
        "re-learning) against merging distinct behaviour points.");
    return 0;
}
