/**
 * @file
 * Backend comparison: the Figure 8 accuracy sweep executed once
 * per predictor backend (clustering PLT vs the online learned
 * model), printed as one fig08-style table per backend plus a
 * head-to-head summary.
 *
 * Not a paper figure — the paper only evaluates the clustering
 * PLT. This bench exists to quantify what the pluggable-backend
 * interface buys: the same workloads, machine, scheduling and
 * audit policy, with only the learn/predict strategy swapped, so
 * any accuracy delta is attributable to the backend alone. CI
 * gates each backend's smoke accuracy against its own committed
 * baseline (tools/check_accuracy_baseline.py --backend).
 */

#include "common.hh"
#include "core/predictor_backend.hh"
#include "driver/experiments.hh"
#include "driver/sweep.hh"
#include "obs/accuracy.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Backend comparison",
           "Figure 8 accuracy sweep per predictor backend "
           "(Statistical strategy, window 100)");

    struct BackendRow
    {
        PredictorBackendKind kind;
        double meanErr = 0.0;
        double worstErr = 0.0;
        double meanCoverage = 0.0;
        double wallSeconds = 0.0;
    };
    BackendRow rows[] = {{PredictorBackendKind::Plt},
                         {PredictorBackendKind::Learned}};

    for (BackendRow &row : rows) {
        SweepSpec spec = fig08Sweep(smokeFactor());
        spec.smoke = smokeMode();
        setSweepBackend(spec, row.kind);
        RunnerOptions opts;
        opts.threads = threadArg(argc, argv);
        SweepResult sweep = runSweep(spec, opts);

        std::cout << "-- backend: "
                  << predictorBackendName(row.kind) << " --\n";
        TablePrinter table({"bench", "norm_time_pred",
                            "pred_time_err", "coverage",
                            "predictions", "audits"});

        RunningStats err_stats, cov_stats;
        for (const auto &name : spec.workloads) {
            const CellResult &full =
                *sweep.find(name, RunMode::Full);
            const CellResult &pred =
                *sweep.find(name, RunMode::Accelerated);

            double t_pred =
                static_cast<double>(pred.totals.totalCycles()) /
                static_cast<double>(full.totals.totalCycles());
            err_stats.add(pred.cycleError);
            cov_stats.add(pred.totals.coverage());

            obs::AccuracyRollup roll =
                obs::rollupAccuracy(pred.accuracy);
            table.addRow(
                {name, TablePrinter::fmt(t_pred, 3),
                 TablePrinter::pct(pred.cycleError),
                 TablePrinter::pct(pred.totals.coverage()),
                 std::to_string(roll.predictions),
                 std::to_string(roll.audits)});
        }
        table.print(std::cout);

        row.meanErr = err_stats.mean();
        row.worstErr = err_stats.max();
        row.meanCoverage = cov_stats.mean();
        row.wallSeconds = sweep.wallSeconds;

        std::cout << "average prediction error: "
                  << TablePrinter::pct(row.meanErr)
                  << ", worst case: "
                  << TablePrinter::pct(row.worstErr) << "\n\n";
    }

    std::cout << "-- head to head --\n";
    TablePrinter head({"backend", "mean_err", "worst_err",
                       "mean_coverage", "sweep_s"});
    for (const BackendRow &row : rows)
        head.addRow({std::string(predictorBackendName(row.kind)),
                     TablePrinter::pct(row.meanErr),
                     TablePrinter::pct(row.worstErr),
                     TablePrinter::pct(row.meanCoverage),
                     TablePrinter::fmt(row.wallSeconds, 2)});
    head.print(std::cout);

    paperNote(
        "No paper counterpart: the paper's predictor is the "
        "clustering PLT only. Both backends see identical detailed "
        "samples and audit schedules; coverage matches because "
        "detail/predict scheduling is backend-independent, so the "
        "error columns isolate the prediction strategy itself.");
    return 0;
}
