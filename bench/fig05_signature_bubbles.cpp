/**
 * @file
 * Figure 5: bubble histogram of sys_read invocations over
 * (instruction-count, cycle-count) bins — 1000 instructions by 4000
 * cycles, as in the paper.
 *
 * The key signature observation: few, heavily-populated bubbles, and
 * for a given instruction bin the cycles cluster narrowly — so the
 * dynamic instruction count (obtainable in emulation) identifies the
 * behaviour point.
 */

#include <map>

#include "common.hh"

#include "stats/histogram.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Figure 5",
           "sys_read bubble histogram: 1000-instruction x "
           "4000-cycle bins");

    for (const std::string name : {"ab-rand", "ab-seq"}) {
        MachineConfig cfg = paperConfig();
        cfg.recordIntervals = true;
        auto machine = makeMachine(name, cfg, scaled(shapeScale));
        machine->run();

        BubbleHistogram hist(1000.0, 4000.0);
        std::uint64_t reads = 0;
        for (const auto &rec : machine->intervals()) {
            if (rec.type == ServiceType::SysRead) {
                hist.add(static_cast<double>(rec.insts),
                         static_cast<double>(rec.cycles));
                ++reads;
            }
        }

        std::cout << "--- " << name << ": " << reads
                  << " invocations in " << hist.numBubbles()
                  << " non-empty bins ---\n";
        TablePrinter table({"inst_bin_center", "cycle_bin_center",
                            "count"});
        for (const auto &b : hist.bubbles()) {
            table.addRow({TablePrinter::fmt(b.xCenter, 0),
                          TablePrinter::fmt(b.yCenter, 0),
                          std::to_string(b.count)});
        }
        table.print(std::cout);

        // Signature quality: cycles-per-instruction-bin spread.
        std::map<std::int64_t, RunningStats> per_bin;
        for (const auto &rec : machine->intervals()) {
            if (rec.type == ServiceType::SysRead) {
                per_bin[static_cast<std::int64_t>(rec.insts / 1000)]
                    .add(static_cast<double>(rec.cycles));
            }
        }
        RunningStats bin_cv;
        for (auto &[bin, s] : per_bin) {
            if (s.count() >= 2)
                bin_cv.add(s.cv());
        }
        std::cout << "mean within-instruction-bin cycle CV: "
                  << TablePrinter::fmt(bin_cv.mean(), 3) << "\n\n";
    }

    paperNote(
        "most (instruction, cycle) bins are empty; populated bins "
        "are few and large, and a given instruction bin spans a "
        "narrow cycle range — instruction count is a good "
        "signature.");
    return 0;
}
