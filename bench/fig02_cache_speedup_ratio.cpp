/**
 * @file
 * Figure 2: speedup from growing the L2 from 512KB to 1MB, measured
 * with application-only simulation versus full-system simulation.
 *
 * Application-only simulation wrongly concludes the larger cache is
 * useless for OS-intensive workloads; full-system simulation shows
 * up to 2.03x (iperf in the paper).
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Figure 2",
           "speedup of 1MB over 512KB L2: App-Only vs App+OS");

    TablePrinter table({"bench", "app_only_speedup",
                        "app_os_speedup"});

    for (const auto &name : allWorkloads()) {
        RunTotals app_small =
            runAppOnly(name, paperConfig(512 * 1024), shapeScale);
        RunTotals app_large =
            runAppOnly(name, paperConfig(1024 * 1024), shapeScale);
        RunTotals full_small =
            runFull(name, paperConfig(512 * 1024), shapeScale);
        RunTotals full_large =
            runFull(name, paperConfig(1024 * 1024), shapeScale);

        double app_speedup =
            static_cast<double>(app_small.totalCycles()) /
            static_cast<double>(app_large.totalCycles());
        double full_speedup =
            static_cast<double>(full_small.totalCycles()) /
            static_cast<double>(full_large.totalCycles());

        table.addRow({name, TablePrinter::fmt(app_speedup, 3),
                      TablePrinter::fmt(full_speedup, 3)});
    }

    table.print(std::cout);
    paperNote(
        "App-Only bars ~1.0 for the OS-intensive set (misleading); "
        "App+OS bars clearly >1, up to 2.03x for iperf; the two "
        "bars agree for SPEC2000.");
    return 0;
}
