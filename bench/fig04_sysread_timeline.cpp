/**
 * @file
 * Figure 4: execution time of sys_read at each invocation, for
 * ab-rand (a) and ab-seq (b).
 *
 * The scatter shows high invocation-to-invocation variation but only
 * a limited number of repeated behaviour levels; for ab-seq, new
 * levels appear when the served document changes — the case that
 * stresses re-learning.
 */

#include <algorithm>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Figure 4",
           "sys_read execution time per invocation (downsampled "
           "scatter; min/max per bucket of invocations)");

    for (const std::string name : {"ab-rand", "ab-seq"}) {
        MachineConfig cfg = paperConfig();
        cfg.recordIntervals = true;
        auto machine = makeMachine(name, cfg, scaled(shapeScale));
        machine->run();

        std::vector<Cycles> series;
        for (const auto &rec : machine->intervals()) {
            if (rec.type == ServiceType::SysRead)
                series.push_back(rec.cycles);
        }

        std::cout << "--- " << name << " (" << series.size()
                  << " invocations) ---\n";
        TablePrinter table({"invocation", "cycles_min",
                            "cycles_mean", "cycles_max"});
        std::size_t bucket =
            std::max<std::size_t>(series.size() / 40, 1);
        for (std::size_t start = 0; start < series.size();
             start += bucket) {
            std::size_t end =
                std::min(series.size(), start + bucket);
            RunningStats s;
            for (std::size_t i = start; i < end; ++i)
                s.add(static_cast<double>(series[i]));
            table.addRow({std::to_string(start),
                          TablePrinter::fmt(s.min(), 0),
                          TablePrinter::fmt(s.mean(), 0),
                          TablePrinter::fmt(s.max(), 0)});
        }
        table.print(std::cout);

        RunningStats all;
        for (Cycles c : series)
            all.add(static_cast<double>(c));
        std::cout << "overall: min " << all.min() << ", max "
                  << all.max() << ", mean "
                  << TablePrinter::fmt(all.mean(), 0) << "\n\n";
    }

    paperNote(
        "sys_read varies from ~2,000 to ~50,000 cycles across "
        "invocations; ab-seq shows step changes when the served "
        "document changes.");
    return 0;
}
