/**
 * @file
 * Figure 1: L2 cache misses, execution time and IPC obtained from
 * full-system simulation, normalized to application-only simulation.
 *
 * The paper's motivating result: for OS-intensive workloads,
 * application-only simulation misses up to 405x of the L2 misses and
 * underestimates execution time by up to 126x, while SPEC2000-like
 * workloads are essentially unaffected.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Figure 1",
           "full-system vs application-only simulation, normalized "
           "to application-only (1MB L2)");

    TablePrinter table({"bench", "norm_l2_misses", "norm_exec_time",
                        "norm_ipc", "os_inst_frac"});

    for (const auto &name : allWorkloads()) {
        MachineConfig cfg = paperConfig();
        RunTotals full = runFull(name, cfg, shapeScale);
        RunTotals app = runAppOnly(name, cfg, shapeScale);

        auto safe = [](std::uint64_t v) {
            return v ? static_cast<double>(v) : 1.0;
        };
        double l2_ratio =
            static_cast<double>(full.combinedMem().l2Misses) /
            safe(app.combinedMem().l2Misses);
        double time_ratio =
            static_cast<double>(full.totalCycles()) /
            safe(app.totalCycles());
        double ipc_ratio = full.ipc() / app.ipc();

        table.addRow({name, TablePrinter::fmt(l2_ratio, 1),
                      TablePrinter::fmt(time_ratio, 2),
                      TablePrinter::fmt(ipc_ratio, 2),
                      TablePrinter::pct(full.osInstFraction())});
    }

    table.print(std::cout);
    paperNote(
        "OS-intensive L2-miss ratios up to 405x and execution-time "
        "ratios up to 126x; SPEC2000 ratios ~1; 67-99% OS "
        "instructions for the OS-intensive set.");
    return 0;
}
