/**
 * @file
 * Figure 3: per-OS-service average and range (mean +- stddev) of
 * simulated cycles and IPC, for ab-rand and ab-seq.
 *
 * Shows that (a) services differ from each other, (b) the same
 * service differs across applications, and (c) per-service variation
 * is high — each service has multiple behaviour points.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Figure 3",
           "per-service cycles and IPC: average +- stddev (services "
           "invoked more than once)");

    for (const std::string name : {"ab-rand", "ab-seq"}) {
        MachineConfig cfg = paperConfig();
        cfg.recordIntervals = true;
        auto machine = makeMachine(name, cfg, scaled(shapeScale));
        machine->run();
        auto chars = characterizeServices(machine->intervals());

        std::cout << "--- " << name << " ---\n";
        TablePrinter table({"service", "invocations", "cycles_avg",
                            "cycles_stddev", "ipc_avg",
                            "ipc_stddev"});
        for (const auto &c : chars) {
            if (c.invocations < 2)
                continue;
            table.addRow({serviceName(c.type),
                          std::to_string(c.invocations),
                          TablePrinter::fmt(c.cycles.mean(), 0),
                          TablePrinter::fmt(c.cycles.stddev(), 0),
                          TablePrinter::fmt(c.ipc.mean(), 3),
                          TablePrinter::fmt(c.ipc.stddev(), 3)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    paperNote(
        "services average a few thousand to tens of thousands of "
        "cycles; IPC ranges 0.09-0.47; ranges (stddev) are large "
        "for most services and differ between ab-rand and ab-seq.");
    return 0;
}
