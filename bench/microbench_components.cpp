/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot
 * components: cache access, code generation (the emulation cost
 * floor), branch prediction, and the two timing models. These bound
 * the achievable Table 1 ratios.
 */

#include <benchmark/benchmark.h>

#include "mem/hierarchy.hh"
#include "obs/telemetry.hh"
#include "sim/codegen.hh"
#include "sim/inorder_cpu.hh"
#include "sim/ooo_cpu.hh"
#include "util/random.hh"

namespace
{

using namespace osp;

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheParams{"l1", 16 * 1024, 4, 64,
                            ReplPolicy::Lru});
    Pcg32 rng(1);
    std::vector<Addr> addrs;
    for (int i = 0; i < 4096; ++i)
        addrs.push_back(64ULL * rng.range(1024));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addrs[i++ & 4095], false, Owner::App));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_HierarchyAccess(benchmark::State &state)
{
    MemoryHierarchy hier((HierarchyParams()));
    Pcg32 rng(1);
    std::vector<Addr> addrs;
    for (int i = 0; i < 4096; ++i)
        addrs.push_back(64ULL * rng.range(65536));
    std::size_t i = 0;
    Cycles now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hier.access(
            addrs[i++ & 4095], AccessType::Load, Owner::App,
            now += 4));
    }
}
BENCHMARK(BM_HierarchyAccess);

void
BM_CodegenLowering(benchmark::State &state)
{
    CodeProfile prof;
    prof.code = Region{0x400000, 32 * 1024};
    CodeGenerator gen(1, 1);
    for (auto _ : state) {
        if (gen.done()) {
            gen.pushCompute(prof, 4096, Region{0x1000000, 65536},
                            PatternKind::Random);
        }
        benchmark::DoNotOptimize(gen.next());
    }
}
BENCHMARK(BM_CodegenLowering);

void
BM_GsharePredict(benchmark::State &state)
{
    GshareBp bp(12);
    Pcg32 rng(1);
    Addr pc = 0x400000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bp.predictAndUpdate(pc, rng.chance(0.9)));
        pc += 4;
    }
}
BENCHMARK(BM_GsharePredict);

void
BM_InOrderExecute(benchmark::State &state)
{
    MemoryHierarchy hier((HierarchyParams()));
    CpuParams params;
    GshareBp bp(12);
    InOrderCpu cpu(params, &hier, &bp);
    CodeProfile prof;
    prof.code = Region{0x400000, 32 * 1024};
    CodeGenerator gen(1, 2);
    for (auto _ : state) {
        if (gen.done()) {
            gen.pushCompute(prof, 4096, Region{0x1000000, 65536},
                            PatternKind::Random);
        }
        cpu.execute(gen.next(), Owner::App);
    }
    benchmark::DoNotOptimize(cpu.now());
}
BENCHMARK(BM_InOrderExecute);

void
BM_OooExecute(benchmark::State &state)
{
    MemoryHierarchy hier((HierarchyParams()));
    CpuParams params;
    GshareBp bp(12);
    OooCpu cpu(params, &hier, &bp);
    CodeProfile prof;
    prof.code = Region{0x400000, 32 * 1024};
    CodeGenerator gen(1, 3);
    for (auto _ : state) {
        if (gen.done()) {
            gen.pushCompute(prof, 4096, Region{0x1000000, 65536},
                            PatternKind::Random);
        }
        cpu.execute(gen.next(), Owner::App);
    }
    benchmark::DoNotOptimize(cpu.now());
}
BENCHMARK(BM_OooExecute);

void
BM_TelemetryCounterInc(benchmark::State &state)
{
    // The attached hot-path cost: one increment through a pointer
    // cached at attach time.
    obs::Registry reg;
    obs::Counter *c = &reg.counter("bench", "ops");
    for (auto _ : state) {
        c->inc();
        benchmark::DoNotOptimize(c);
    }
    benchmark::DoNotOptimize(c->value());
}
BENCHMARK(BM_TelemetryCounterInc);

void
BM_TelemetryDetachedPath(benchmark::State &state)
{
    // The detached (default) cost every instrumented site pays: a
    // null-pointer test. This is what the <= 2% overhead budget on
    // the component benches rests on.
    obs::Counter *c = nullptr;
    benchmark::DoNotOptimize(c);
    for (auto _ : state) {
        if (c)
            c->inc();
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_TelemetryDetachedPath);

void
BM_TelemetryTracerDisabled(benchmark::State &state)
{
    // record() on a capacity-0 tracer: a single predictable branch.
    obs::EventTracer tracer(0);
    for (auto _ : state) {
        tracer.record(obs::TraceEventKind::ClusterMatch, 3, 10, 20);
        benchmark::DoNotOptimize(tracer);
    }
}
BENCHMARK(BM_TelemetryTracerDisabled);

void
BM_TelemetryTracerRecord(benchmark::State &state)
{
    // Steady-state ring overwrite (the enabled worst case).
    obs::EventTracer tracer(4096);
    std::uint64_t i = 0;
    for (auto _ : state) {
        tracer.setTick(++i);
        tracer.record(obs::TraceEventKind::ClusterMatch, 3, i, 20);
        benchmark::DoNotOptimize(tracer);
    }
}
BENCHMARK(BM_TelemetryTracerRecord);

} // namespace

BENCHMARK_MAIN();
