/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot
 * components: cache access, code generation (the emulation cost
 * floor), branch prediction, the two timing models, and the whole
 * Machine run loop (block-batched vs legacy per-op). These bound
 * the achievable Table 1 ratios.
 *
 * Besides the usual google-benchmark CLI, `--bench-json PATH`
 * switches to a self-timed mode that measures the end-to-end hot
 * path (simulated MIPS per detail level, cache accesses/sec) and
 * merges the numbers into an "ospredict-bench-v1" document — the
 * artifact tools/check_perf_baseline.py gates in CI. `--smoke`
 * shrinks the measured instruction budgets.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <cstdio>

#include <unistd.h>

#include "bench_json.hh"
#include "common.hh"
#include "mem/hierarchy.hh"
#include "obs/telemetry.hh"
#include "sim/codegen.hh"
#include "sim/inorder_cpu.hh"
#include "sim/ooo_cpu.hh"
#include "store/claim_table.hh"
#include "store/page_store.hh"
#include "util/random.hh"
#include "workload/registry.hh"

namespace
{

using namespace osp;

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheParams{"l1", 16 * 1024, 4, 64,
                            ReplPolicy::Lru});
    Pcg32 rng(1);
    std::vector<Addr> addrs;
    for (int i = 0; i < 4096; ++i)
        addrs.push_back(64ULL * rng.range(1024));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addrs[i++ & 4095], false, Owner::App));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_HierarchyAccess(benchmark::State &state)
{
    MemoryHierarchy hier((HierarchyParams()));
    Pcg32 rng(1);
    std::vector<Addr> addrs;
    for (int i = 0; i < 4096; ++i)
        addrs.push_back(64ULL * rng.range(65536));
    std::size_t i = 0;
    Cycles now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hier.access(
            addrs[i++ & 4095], AccessType::Load, Owner::App,
            now += 4));
    }
}
BENCHMARK(BM_HierarchyAccess);

void
BM_CodegenLowering(benchmark::State &state)
{
    CodeProfile prof;
    prof.code = Region{0x400000, 32 * 1024};
    CodeGenerator gen(1, 1);
    for (auto _ : state) {
        if (gen.done()) {
            gen.pushCompute(prof, 4096, Region{0x1000000, 65536},
                            PatternKind::Random);
        }
        benchmark::DoNotOptimize(gen.next());
    }
}
BENCHMARK(BM_CodegenLowering);

void
BM_GsharePredict(benchmark::State &state)
{
    GshareBp bp(12);
    Pcg32 rng(1);
    Addr pc = 0x400000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bp.predictAndUpdate(pc, rng.chance(0.9)));
        pc += 4;
    }
}
BENCHMARK(BM_GsharePredict);

void
BM_InOrderExecute(benchmark::State &state)
{
    MemoryHierarchy hier((HierarchyParams()));
    CpuParams params;
    GshareBp bp(12);
    InOrderCpu cpu(params, &hier, &bp);
    CodeProfile prof;
    prof.code = Region{0x400000, 32 * 1024};
    CodeGenerator gen(1, 2);
    for (auto _ : state) {
        if (gen.done()) {
            gen.pushCompute(prof, 4096, Region{0x1000000, 65536},
                            PatternKind::Random);
        }
        cpu.execute(gen.next(), Owner::App);
    }
    benchmark::DoNotOptimize(cpu.now());
}
BENCHMARK(BM_InOrderExecute);

void
BM_OooExecute(benchmark::State &state)
{
    MemoryHierarchy hier((HierarchyParams()));
    CpuParams params;
    GshareBp bp(12);
    OooCpu cpu(params, &hier, &bp);
    CodeProfile prof;
    prof.code = Region{0x400000, 32 * 1024};
    CodeGenerator gen(1, 3);
    for (auto _ : state) {
        if (gen.done()) {
            gen.pushCompute(prof, 4096, Region{0x1000000, 65536},
                            PatternKind::Random);
        }
        cpu.execute(gen.next(), Owner::App);
    }
    benchmark::DoNotOptimize(cpu.now());
}
BENCHMARK(BM_OooExecute);

void
BM_TelemetryCounterInc(benchmark::State &state)
{
    // The attached hot-path cost: one increment through a pointer
    // cached at attach time.
    obs::Registry reg;
    obs::Counter *c = &reg.counter("bench", "ops");
    for (auto _ : state) {
        c->inc();
        benchmark::DoNotOptimize(c);
    }
    benchmark::DoNotOptimize(c->value());
}
BENCHMARK(BM_TelemetryCounterInc);

void
BM_TelemetryDetachedPath(benchmark::State &state)
{
    // The detached (default) cost every instrumented site pays: a
    // null-pointer test. This is what the <= 2% overhead budget on
    // the component benches rests on.
    obs::Counter *c = nullptr;
    benchmark::DoNotOptimize(c);
    for (auto _ : state) {
        if (c)
            c->inc();
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_TelemetryDetachedPath);

void
BM_TelemetryTracerDisabled(benchmark::State &state)
{
    // record() on a capacity-0 tracer: a single predictable branch.
    obs::EventTracer tracer(0);
    for (auto _ : state) {
        tracer.record(obs::TraceEventKind::ClusterMatch, 3, 10, 20);
        benchmark::DoNotOptimize(tracer);
    }
}
BENCHMARK(BM_TelemetryTracerDisabled);

void
BM_TelemetryTracerRecord(benchmark::State &state)
{
    // Steady-state ring overwrite (the enabled worst case).
    obs::EventTracer tracer(4096);
    std::uint64_t i = 0;
    for (auto _ : state) {
        tracer.setTick(++i);
        tracer.record(obs::TraceEventKind::ClusterMatch, 3, i, 20);
        benchmark::DoNotOptimize(tracer);
    }
}
BENCHMARK(BM_TelemetryTracerRecord);

/** Shared scaffold for whole-machine loop benchmarks: each
 *  iteration runs a fresh machine for a fixed instruction budget;
 *  items/sec is therefore simulated instructions/sec. */
void
runMachineBench(benchmark::State &state, DetailLevel level,
                std::uint32_t block_ops)
{
    constexpr InstCount kInsts = 2'000'000;
    for (auto _ : state) {
        state.PauseTiming();
        MachineConfig cfg = bench::paperConfig();
        cfg.level = level;
        cfg.blockOps = block_ops;
        auto machine = makeMachine("gzip", cfg, 1.0);
        state.ResumeTiming();
        benchmark::DoNotOptimize(machine->run(kInsts).totalInsts());
        state.PauseTiming();
        machine.reset();
        state.ResumeTiming();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kInsts);
}

/** The batched hot path this PR introduces (blockOps default). */
void
BM_MachineEmulateBlock(benchmark::State &state)
{
    runMachineBench(state, DetailLevel::Emulate, 256);
}
BENCHMARK(BM_MachineEmulateBlock)->Unit(benchmark::kMillisecond);

/** The legacy one-op-at-a-time loop (blockOps = 1), kept as the
 *  comparison point for the batching win. */
void
BM_MachineEmulatePerOp(benchmark::State &state)
{
    runMachineBench(state, DetailLevel::Emulate, 1);
}
BENCHMARK(BM_MachineEmulatePerOp)->Unit(benchmark::kMillisecond);

void
BM_MachineInOrderCacheBlock(benchmark::State &state)
{
    runMachineBench(state, DetailLevel::InOrderCache, 256);
}
BENCHMARK(BM_MachineInOrderCacheBlock)
    ->Unit(benchmark::kMillisecond);

/**
 * One distributed-sweep coordination unit: the claim transaction
 * (heartbeat bump + claim record) and the commit transaction
 * (heartbeat bump + cell value + done record) a worker pays per
 * cell on top of the simulation itself — two synced store commits
 * through the shared-mode writer gate. Bounds how small a cell can
 * get before coordination dominates (driver/claim_executor.hh).
 */
void
BM_SweepClaimLoop(benchmark::State &state)
{
    std::string path = "/tmp/osp_bm_claim_" +
                       std::to_string(::getpid()) + ".db";
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
    {
        store::StoreOptions sopts;
        sopts.shared = true;
        auto pstore = store::PageStore::open(path, sopts);
        store::ClaimTable table("fp");
        std::uint64_t i = 0;
        for (auto _ : state) {
            std::string key = "k" + std::to_string(i++);
            {
                store::WriteTx tx = pstore->beginWrite();
                std::uint64_t hb = table.bumpHeartbeat(tx);
                store::ClaimRecord rec;
                rec.owner = "bench";
                rec.epoch = hb;
                table.put(tx, key, rec);
                tx.commit();
            }
            {
                store::WriteTx tx = pstore->beginWrite();
                table.bumpHeartbeat(tx);
                auto rec = table.get(tx, key);
                rec->state = store::ClaimState::Done;
                tx.put("cell/fp/" + key, "value");
                table.put(tx, key, *rec);
                tx.commit();
            }
        }
    }
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}
BENCHMARK(BM_SweepClaimLoop)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------
// --bench-json mode: self-timed hot-path measurements with a
// deterministic schema (values vary by machine; the CI gate checks
// mode ratios).
// ---------------------------------------------------------------

/** Best-of-3 wall seconds for one fresh machine run. */
double
timeMachineRun(DetailLevel level, std::uint32_t block_ops,
               InstCount insts)
{
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        MachineConfig cfg = bench::paperConfig();
        cfg.level = level;
        cfg.blockOps = block_ops;
        auto machine = makeMachine("gzip", cfg, 1.0);
        auto t0 = std::chrono::steady_clock::now();
        InstCount done = machine->run(insts).totalInsts();
        auto t1 = std::chrono::steady_clock::now();
        double secs =
            std::chrono::duration<double>(t1 - t0).count();
        if (done + done / 10 < insts) {
            std::cerr << "microbench: workload finished early ("
                      << done << " of " << insts << " insts)\n";
        }
        double mips_time = secs / static_cast<double>(done);
        if (rep == 0 || mips_time < best)
            best = mips_time;
    }
    return best;  // seconds per instruction
}

/** Best-of-3 seconds per access on the L1-sized cache loop. */
double
timeCacheAccess(std::uint64_t accesses)
{
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        Cache cache(CacheParams{"l1", 16 * 1024, 4, 64,
                                ReplPolicy::Lru});
        Pcg32 rng(1);
        std::vector<Addr> addrs;
        for (int i = 0; i < 4096; ++i)
            addrs.push_back(64ULL * rng.range(1024));
        std::uint64_t hits = 0;
        auto t0 = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < accesses; ++i)
            hits += cache.access(addrs[i & 4095], false,
                                 Owner::App).hit;
        auto t1 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(hits);
        double secs =
            std::chrono::duration<double>(t1 - t0).count() /
            static_cast<double>(accesses);
        if (rep == 0 || secs < best)
            best = secs;
    }
    return best;
}

/** Best-of-3 seconds per claim/commit transaction pair (the
 *  per-cell coordination overhead of a distributed sweep). */
double
timeClaimLoop(std::uint64_t pairs)
{
    std::string path = "/tmp/osp_bench_claim_" +
                       std::to_string(::getpid()) + ".db";
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        std::remove(path.c_str());
        std::remove((path + ".lock").c_str());
        store::StoreOptions sopts;
        sopts.shared = true;
        auto pstore = store::PageStore::open(path, sopts);
        store::ClaimTable table("fp");
        auto t0 = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < pairs; ++i) {
            std::string key = "k" + std::to_string(i);
            {
                store::WriteTx tx = pstore->beginWrite();
                std::uint64_t hb = table.bumpHeartbeat(tx);
                store::ClaimRecord rec;
                rec.owner = "bench";
                rec.epoch = hb;
                table.put(tx, key, rec);
                tx.commit();
            }
            {
                store::WriteTx tx = pstore->beginWrite();
                table.bumpHeartbeat(tx);
                auto rec = table.get(tx, key);
                rec->state = store::ClaimState::Done;
                tx.put("cell/fp/" + key, "value");
                table.put(tx, key, *rec);
                tx.commit();
            }
        }
        auto t1 = std::chrono::steady_clock::now();
        double secs =
            std::chrono::duration<double>(t1 - t0).count() /
            static_cast<double>(pairs);
        if (rep == 0 || secs < best)
            best = secs;
    }
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
    return best;
}

int
runBenchJson(const std::string &path)
{
    // Smoke shrinks the budgets ~4x: enough for stable ratios in
    // CI, small enough to finish in seconds even unoptimised.
    const bool smoke = bench::smokeMode();
    // All four machine modes run the same instruction budget: gzip's
    // throughput varies strongly with run length (the data footprint
    // warms up over the first few million instructions), so mode
    // *ratios* are only meaningful at a single operating point.
    const InstCount machine_insts = smoke ? 2'000'000 : 8'000'000;
    const std::uint64_t cache_accesses =
        smoke ? 4'000'000 : 16'000'000;

    auto mips = [](double secs_per_inst) {
        return 1.0 / (secs_per_inst * 1e6);
    };

    std::vector<bench::BenchMetric> metrics;
    metrics.push_back(
        {"emulate_block_mips",
         mips(timeMachineRun(DetailLevel::Emulate, 256,
                             machine_insts)),
         "mips"});
    metrics.push_back(
        {"emulate_perop_mips",
         mips(timeMachineRun(DetailLevel::Emulate, 1,
                             machine_insts)),
         "mips"});
    metrics.push_back(
        {"inorder_cache_mips",
         mips(timeMachineRun(DetailLevel::InOrderCache, 256,
                             machine_insts)),
         "mips"});
    metrics.push_back(
        {"ooo_cache_mips",
         mips(timeMachineRun(DetailLevel::OooCache, 256,
                             machine_insts)),
         "mips"});
    metrics.push_back(
        {"cache_accesses_per_sec",
         1.0 / timeCacheAccess(cache_accesses), "1/s"});
    metrics.push_back(
        {"claim_commit_pairs_per_sec",
         1.0 / timeClaimLoop(smoke ? 64 : 256), "1/s"});

    if (!bench::mergeBenchJson(path, smoke, metrics))
        return 1;
    for (const auto &m : metrics) {
        std::cerr << "microbench: " << m.name << " = " << m.value
                  << " " << m.unit << "\n";
    }
    std::cerr << "microbench: bench json -> " << path << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    osp::bench::init(argc, argv);
    std::vector<char *> keep;
    keep.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--bench-json") == 0 &&
            i + 1 < argc) {
            return runBenchJson(argv[i + 1]);
        }
        if (std::strcmp(argv[i], "--smoke") == 0)
            continue;  // consumed by bench::init()
        keep.push_back(argv[i]);
    }
    int kept = static_cast<int>(keep.size());
    benchmark::Initialize(&kept, keep.data());
    keep.resize(static_cast<std::size_t>(kept));
    if (benchmark::ReportUnrecognizedArguments(kept, keep.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
