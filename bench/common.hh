/**
 * @file
 * Shared scaffolding for the figure/table regeneration benches.
 *
 * Every binary in bench/ regenerates one figure or table of the
 * paper (see DESIGN.md's per-experiment index). The helpers here
 * standardize configuration (paper Sec. 5.1 machine), workload
 * scale, seeds, and output formatting so the tables are directly
 * comparable across benches.
 */

#ifndef OSP_BENCH_COMMON_HH
#define OSP_BENCH_COMMON_HH

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "core/accelerator.hh"
#include "core/report.hh"
#include "util/table.hh"
#include "workload/registry.hh"

namespace osp::bench
{

/** Seed printed by every bench; change to replay a different run. */
inline constexpr std::uint64_t defaultSeed = 42;

/** Work-volume scale for accuracy experiments. 2.0 gives per-service
 *  invocation counts closer to the paper's multi-thousand range. */
inline constexpr double accuracyScale = 2.0;

/** Work-volume scale for characterization/shape experiments. */
inline constexpr double shapeScale = 1.0;

/** Smoke mode shrinks every bench's work volume by this factor so
 *  CI can execute the binaries in seconds instead of minutes. The
 *  numbers lose paper fidelity; smoke runs exist to prove the
 *  binaries execute and to give CI a diffable artifact. */
inline constexpr double smokeDivisor = 20.0;

/** Mutable smoke state, seeded from OSPREDICT_SMOKE=1. */
inline bool &
smokeFlag()
{
    static bool flag = [] {
        const char *env = std::getenv("OSPREDICT_SMOKE");
        return env && *env && std::strcmp(env, "0") != 0;
    }();
    return flag;
}

/** True when smoke mode is active (--smoke or OSPREDICT_SMOKE=1). */
inline bool smokeMode() { return smokeFlag(); }

/** Multiplier applied to every work-volume scale. */
inline double
smokeFactor()
{
    return smokeMode() ? 1.0 / smokeDivisor : 1.0;
}

/** A bench scale with smoke shrinking applied. */
inline double scaled(double scale) { return scale * smokeFactor(); }

/**
 * Standard bench argument handling: `--smoke` enables smoke mode
 * (equivalent to OSPREDICT_SMOKE=1). Unknown arguments are left for
 * the bench's own parsing. Call first thing in main().
 */
inline void
init(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smokeFlag() = true;
    }
}

/** Value of `--threads N` (0 = let the runner pick). */
inline unsigned
threadArg(int argc, char **argv, unsigned fallback = 0)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0)
            return static_cast<unsigned>(
                std::strtoul(argv[i + 1], nullptr, 10));
    }
    return fallback;
}

/** The paper's machine (Sec. 5.1), with an optional L2 size. */
inline MachineConfig
paperConfig(std::uint64_t l2_bytes = 1024 * 1024)
{
    MachineConfig cfg;
    cfg.seed = defaultSeed;
    cfg.hier.l2.sizeBytes = l2_bytes;
    return cfg;
}

/** The paper's predictor configuration (Sec. 4.3-4.4 defaults:
 *  pmin 3%, DoC 95% -> window 100; Statistical re-learning). */
inline PredictorParams
paperPredictor(RelearnStrategy strategy = RelearnStrategy::Statistical)
{
    PredictorParams p;
    p.learningWindow = 100;
    p.relearn.strategy = strategy;
    return p;
}

/** Run a workload fully detailed. */
inline RunTotals
runFull(const std::string &name, const MachineConfig &cfg,
        double scale)
{
    auto machine = makeMachine(name, cfg, scaled(scale));
    return machine->run();
}

/** Run a workload in application-only mode. */
inline RunTotals
runAppOnly(const std::string &name, MachineConfig cfg, double scale)
{
    cfg.appOnly = true;
    auto machine = makeMachine(name, cfg, scaled(scale));
    return machine->run();
}

/** Result of an accelerated run. */
struct AccelResult
{
    RunTotals totals;
    ServicePredictor::Stats stats;
};

/** Run a workload with the accelerator attached. */
inline AccelResult
runAccelerated(const std::string &name, const MachineConfig &cfg,
               double scale,
               const PredictorParams &params = paperPredictor())
{
    auto machine = makeMachine(name, cfg, scaled(scale));
    Accelerator accel(params);
    machine->setController(&accel);
    AccelResult out;
    out.totals = machine->run();
    out.stats = accel.aggregateStats();
    return out;
}

/** Standard bench banner: figure id, description, seed. */
inline void
banner(const std::string &experiment, const std::string &what)
{
    std::cout << "==== " << experiment << ": " << what << " ====\n"
              << "(seed " << defaultSeed
              << "; paper machine: 4GHz 4-wide OOO, 126-entry "
                 "window, 16KB L1I/L1D, 1MB 8-way L2 unless "
                 "stated)\n";
    if (smokeMode())
        std::cout << "(SMOKE MODE: work volume / "
                  << smokeDivisor
                  << " — numbers are not paper-comparable)\n";
    std::cout << "\n";
}

/** Print the paper's reference values next to ours. */
inline void
paperNote(const std::string &note)
{
    std::cout << "\npaper reference: " << note << "\n\n";
}

} // namespace osp::bench

#endif // OSP_BENCH_COMMON_HH
