/**
 * @file
 * Ablation 5: online learning vs reused offline profiles.
 *
 * The paper's Sec. 2 argues that sampling approaches whose samples
 * are "determined in one run but applied in another" cannot capture
 * run-to-run variation of OS behaviour, which is why its learning
 * is fully online. This bench quantifies that: a profile (every
 * service's learned clusters) is saved from a training run and
 * reused — frozen, no re-learning, no audits — on (a) another run
 * of the same workload with a different seed, and (b) a different
 * workload. Online learning on the target run is the baseline.
 */

#include <sstream>

#include "common.hh"

#include "util/logging.hh"

namespace
{

using namespace osp;
using namespace osp::bench;

/** Train on (workload, seed) and return the serialized profile. */
std::string
trainProfile(const std::string &workload, std::uint64_t seed)
{
    MachineConfig cfg = paperConfig();
    cfg.seed = seed;
    auto machine = makeMachine(workload, cfg, scaled(shapeScale));
    Accelerator accel(paperPredictor());
    machine->setController(&accel);
    machine->run();
    std::ostringstream oss;
    accel.saveState(oss);
    return oss.str();
}

/** Run (workload, seed) with a frozen, preloaded profile. */
RunTotals
runFrozen(const std::string &workload, std::uint64_t seed,
          const std::string &profile)
{
    MachineConfig cfg = paperConfig();
    cfg.seed = seed;
    auto machine = makeMachine(workload, cfg, scaled(shapeScale));
    PredictorParams pp = paperPredictor(RelearnStrategy::BestMatch);
    pp.auditEvery = 0;  // offline: no correction mechanisms
    Accelerator accel(pp);
    std::istringstream iss(profile);
    if (!accel.loadState(iss))
        osp_fatal("abl5: failed to load profile");
    machine->setController(&accel);
    return machine->run();
}

} // namespace

int
main(int argc, char **argv)
{
    osp::bench::init(argc, argv);
    banner("Ablation 5",
           "online learning vs frozen offline profiles (the "
           "paper's Sec. 2 argument)");

    TablePrinter table({"target_run", "profile_source", "coverage",
                        "time_err"});

    for (const std::string name : {"ab-rand", "ab-seq", "iperf"}) {
        MachineConfig cfg = paperConfig();
        cfg.seed = 1234;  // the evaluation run
        RunTotals full = runFull(name, cfg, shapeScale);

        // Baseline: fully online on the target run.
        AccelResult online = runAccelerated(name, cfg, shapeScale);
        table.addRow(
            {name, "online (paper)",
             TablePrinter::pct(online.totals.coverage()),
             TablePrinter::pct(absError(
                 static_cast<double>(online.totals.totalCycles()),
                 static_cast<double>(full.totalCycles())))});

        // Offline: profile trained on a different run (other seed).
        std::string same = trainProfile(name, defaultSeed);
        RunTotals frozen_same = runFrozen(name, 1234, same);
        table.addRow(
            {name, "offline, same workload",
             TablePrinter::pct(frozen_same.coverage()),
             TablePrinter::pct(absError(
                 static_cast<double>(frozen_same.totalCycles()),
                 static_cast<double>(full.totalCycles())))});

        // Offline: profile trained on a different workload.
        std::string other =
            trainProfile(name == "ab-rand" ? "ab-seq" : "ab-rand",
                         defaultSeed);
        RunTotals frozen_other = runFrozen(name, 1234, other);
        table.addRow(
            {name, "offline, other workload",
             TablePrinter::pct(frozen_other.coverage()),
             TablePrinter::pct(absError(
                 static_cast<double>(frozen_other.totalCycles()),
                 static_cast<double>(full.totalCycles())))});
    }
    table.print(std::cout);

    paperNote(
        "OS-service behaviour is application- and run-specific "
        "(Sec. 3): frozen profiles degrade accuracy, and profiles "
        "from a different application degrade it badly — the "
        "reason the paper's learning is online.");
    return 0;
}
