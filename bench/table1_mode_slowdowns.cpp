/**
 * @file
 * Table 1: wall-clock slowdown of each simulation detail level
 * relative to the fastest mode (in-order, no caches).
 *
 * The paper measured Simics modes: inorder-cache 3x, ooo-nocache
 * 64x, ooo-cache 133x over inorder-nocache. Our substrate's timing
 * models are leaner relative to its functional layer, so the
 * absolute ratios are smaller — both are reported and Table 2
 * evaluates Eq. 10 under each.
 */

#include <chrono>

#include "common.hh"

namespace
{

/** Wall-clock seconds to run ab-rand at the given detail level. */
double
timeMode(osp::DetailLevel level)
{
    using namespace osp;
    using namespace osp::bench;
    MachineConfig cfg = paperConfig();
    cfg.level = level;
    auto machine = makeMachine("ab-rand", cfg, scaled(shapeScale));
    auto start = std::chrono::steady_clock::now();
    machine->run();
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Table 1",
           "slowdown of simulation modes vs in-order/no-cache "
           "(wall-clock, ab-rand)");

    const DetailLevel levels[] = {
        DetailLevel::Emulate,
        DetailLevel::InOrderNoCache,
        DetailLevel::InOrderCache,
        DetailLevel::OooNoCache,
        DetailLevel::OooCache,
    };

    // Warm the page cache of the host and take the best of three
    // runs per mode to suppress scheduling noise.
    double secs[5];
    for (int i = 0; i < 5; ++i) {
        secs[i] = timeMode(levels[i]);
        for (int rep = 1; rep < 3; ++rep)
            secs[i] = std::min(secs[i], timeMode(levels[i]));
    }

    double baseline = secs[1];  // inorder-nocache, as in the paper
    TablePrinter table({"mode", "seconds", "slowdown_vs_baseline",
                        "slowdown_vs_emulate"});
    for (int i = 0; i < 5; ++i) {
        table.addRow({detailLevelName(levels[i]),
                      TablePrinter::fmt(secs[i], 3),
                      TablePrinter::fmt(secs[i] / baseline, 2),
                      TablePrinter::fmt(secs[i] / secs[0], 2)});
    }
    table.print(std::cout);

    std::cout << "\nmeasured detailed(ooo-cache)/emulation ratio: "
              << TablePrinter::fmt(secs[4] / secs[0], 2)
              << "x (the paper's Simics ratio is 133x; our "
                 "functional layer, which both modes share, is a "
                 "larger fraction of total cost)\n";

    paperNote(
        "Simics slowdowns vs inorder-nocache: inorder-cache 3x, "
        "ooo-nocache 64x, ooo-cache 133x.");
    return 0;
}
