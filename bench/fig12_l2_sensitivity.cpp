/**
 * @file
 * Figure 12: absolute execution-time prediction error with L2 sizes
 * of 1MB, 2MB and 4MB (8-way fixed).
 *
 * The paper: accuracy holds across sizes, with the average error
 * slightly declining for larger L2 caches.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Figure 12",
           "absolute execution-time prediction error vs L2 size");

    const std::uint64_t sizes[] = {1ULL << 20, 2ULL << 20,
                                   4ULL << 20};

    TablePrinter table({"bench", "1MB", "2MB", "4MB"});
    RunningStats avg[3];

    for (const auto &name : osIntensiveWorkloads()) {
        std::vector<std::string> row = {name};
        for (int i = 0; i < 3; ++i) {
            MachineConfig cfg = paperConfig(sizes[i]);
            RunTotals full = runFull(name, cfg, accuracyScale);
            AccelResult pred =
                runAccelerated(name, cfg, accuracyScale);
            double err = absError(
                static_cast<double>(pred.totals.totalCycles()),
                static_cast<double>(full.totalCycles()));
            row.push_back(TablePrinter::pct(err));
            avg[i].add(err);
        }
        table.addRow(row);
    }
    table.addRow({"average", TablePrinter::pct(avg[0].mean()),
                  TablePrinter::pct(avg[1].mean()),
                  TablePrinter::pct(avg[2].mean())});
    table.print(std::cout);

    paperNote(
        "errors stay low (a few percent) at every size and decline "
        "slightly with larger L2 caches.");
    return 0;
}
