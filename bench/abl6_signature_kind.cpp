/**
 * @file
 * Ablation 6: instruction-count vs instruction-mix signatures.
 *
 * The paper (Sec. 3) notes that "other metrics such as the mix of
 * instructions, branch history, or Basic Block Vector may also
 * serve as good bases for constructing signatures" but leaves the
 * exploration as future work, since count-based signatures already
 * predict well. This bench runs that exploration: mix signatures
 * additionally require per-class (load/store/branch) counts to
 * match the cluster, splitting same-count paths of different
 * composition at some cost in coverage (finer clusters take longer
 * to learn and mismatch more often).
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace osp;
    using namespace osp::bench;
    init(argc, argv);

    banner("Ablation 6",
           "signature basis: instruction count (paper) vs "
           "count+mix (paper's future work)");

    TablePrinter table({"bench", "signature", "coverage",
                        "time_err", "clusters_sys_read",
                        "outlier_frac"});

    for (const auto &name : osIntensiveWorkloads()) {
        MachineConfig cfg = paperConfig();
        RunTotals full = runFull(name, cfg, shapeScale);
        for (bool mix : {false, true}) {
            PredictorParams pp = paperPredictor();
            pp.useMixSignature = mix;

            auto machine = makeMachine(name, cfg, scaled(shapeScale));
            Accelerator accel(pp);
            machine->setController(&accel);
            const RunTotals &t = machine->run();
            auto stats = accel.aggregateStats();

            std::size_t read_clusters = 0;
            if (t.perService[static_cast<int>(
                                 ServiceType::SysRead)]
                    .invocations) {
                read_clusters =
                    accel.predictor(ServiceType::SysRead)
                        .table()
                        .numClusters();
            }
            double outlier_frac =
                stats.predictedRuns
                    ? static_cast<double>(stats.outliers) /
                          static_cast<double>(stats.predictedRuns)
                    : 0.0;

            table.addRow(
                {name, mix ? "count+mix" : "count",
                 TablePrinter::pct(t.coverage()),
                 TablePrinter::pct(absError(
                     static_cast<double>(t.totalCycles()),
                     static_cast<double>(full.totalCycles()))),
                 std::to_string(read_clusters),
                 TablePrinter::pct(outlier_frac)});
        }
    }
    table.print(std::cout);

    paperNote(
        "count-based signatures already give high accuracy (the "
        "paper's conclusion); the mix refinement mostly adds "
        "clusters and outliers without moving total error much on "
        "these services, whose paths differ in count anyway.");
    return 0;
}
